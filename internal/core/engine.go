package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/depend"
	"repro/internal/effect"
	"repro/internal/explain"
	"repro/internal/frame"
	"repro/internal/hypo"
	"repro/internal/memo"
	"repro/internal/par"
	"repro/internal/sample"
	"repro/internal/stats"
)

// Engine characterizes query results. It is safe for concurrent use; the
// dependency structure of each table is computed once and shared across
// queries, and entire reports are memoized by content fingerprint, so a
// repeated identical query is served from cache and concurrent identical
// queries compute once (the computation-sharing strategy of the paper's
// preparation stage, extended to the whole serving hot path).
type Engine struct {
	cfg Config
	// cfgHash keys the report cache on the effective (post-default)
	// configuration.
	cfgHash uint64

	prep *memo.Cache[prepKey, *prepared]
	// reports may be private to this engine (New) or shared with other
	// engines (NewShared) — the shard router runs one report cache behind
	// all of its shard engines.
	reports *ReportCache
}

// prepared holds the query-independent preparation products for one table.
type prepared struct {
	dep    *depend.Matrix
	dendro *cluster.Dendrogram
}

// New validates cfg and builds an engine with a private report cache.
func New(cfg Config) (*Engine, error) {
	return NewShared(cfg, nil)
}

// NewShared validates cfg and builds an engine whose report-level memo is
// the given shared cache; nil builds a private one (equivalent to New).
// Sharing is safe because report keys are pure content fingerprints plus the
// effective config/options hashes — which engine computes a report never
// affects its bytes.
func NewShared(cfg Config, reports *ReportCache) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Extended {
		// Extended component families default to unit weight unless the
		// user priced them explicitly.
		w := cfg.Weights.Clone()
		for _, k := range []effect.Kind{effect.DiffQuantiles, effect.DiffTails, effect.DiffEntropy, effect.DiffSeparation} {
			if _, ok := w[k]; !ok {
				w[k] = 1
			}
		}
		cfg.Weights = w
	}
	entries, bytes := cfg.EffectiveCacheBounds()
	if reports == nil {
		reports = NewReportCache(entries, bytes)
	}
	return &Engine{
		cfg:     cfg,
		cfgHash: hashConfig(cfg),
		prep:    memo.New[prepKey, *prepared](entries, bytes),
		reports: reports,
	}, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// ReportCache returns the engine's report-level memo — the engine's own when
// built with New, the shared one when built with NewShared.
func (e *Engine) ReportCache() *ReportCache { return e.reports }

// InvalidateCache drops both cache tiers (prepared structures and memoized
// reports). Content fingerprints make stale entries unreachable on their
// own when a table is reloaded with different data — its key changes and
// the old entries age out of the LRU — so this remains mainly for
// benchmarks that need a cold engine. It is NOT sufficient on its own for
// a frame mutated in place against the immutability convention: the
// frame's cached fingerprint would key fresh results under the stale hash.
// Such callers must also call Frame.InvalidateFingerprint (or, better,
// build a new Frame instead of mutating one).
func (e *Engine) InvalidateCache() {
	e.prep.Purge()
	e.reports.Purge()
}

// InvalidateFrame drops the cache entries of the single frame with the
// given content fingerprint from both tiers: its prepared structures
// (every measure/linkage) and its memoized reports (every selection,
// config, and options). Other frames' entries survive — this is the
// scoped companion to InvalidateCache that the table lifecycle
// (Session.Unregister, Session.Append) uses so dropping or growing one
// table never evicts another table's warm entries.
func (e *Engine) InvalidateFrame(fp uint64) {
	e.prep.RemoveIf(func(k prepKey) bool { return k.frame == fp })
	e.reports.InvalidateFrame(fp)
}

// colData carries the per-column, per-query preparation products.
type colData struct {
	idx    int
	name   string
	kind   frame.Kind
	usable bool
	// warning is the skip reason when the column is unusable; collected
	// into Report.Warnings in column order after the parallel fan-out.
	warning string

	// Numeric split.
	in, out []float64
	// Categorical split.
	inCodes, outCodes []int32
	dict              []string

	// One-dimensional Zig-Components of this column.
	comps []effect.Component
	// score is the weighted 1D component mass, used to order columns when
	// packing oversized groups into views.
	score float64
}

// Options tunes a single characterization run.
type Options struct {
	// ExcludeColumns are kept out of every view — typically the columns
	// the user's predicate already constrains, which would otherwise
	// dominate the ranking with tautological views ("high-crime cities
	// have high crime").
	ExcludeColumns []string
	// SkipReportCache bypasses the report-level memo for this run: the
	// pipeline always executes (the prepared-cache still applies) and the
	// result is not stored. Benchmarks and tests use it to measure the
	// per-query pipeline rather than a cache lookup.
	SkipReportCache bool
	// ApproxRows, when positive, runs the per-query statistics on a
	// deterministic stratified sample of at most this many rows and flags
	// the result with a Report.Approximate provenance block. The sample is
	// a pure function of (frame fingerprint, selection fingerprint,
	// ApproxSeed, ApproxRows), so approximate reports are byte-identical
	// per configuration across worker counts, shard counts, and serving
	// topologies — and they memoize under their own report-cache key,
	// separate from the exact report. Callers wanting "a cap, any cap"
	// resolve Config.EffectiveApproxRows before setting this; the engine
	// only ever sees concrete values.
	ApproxRows int
	// ApproxSeed selects the sampling stream for approximate runs (0 is a
	// valid seed). Ignored unless ApproxRows > 0.
	ApproxSeed uint64
}

// Characterize runs the full pipeline on table f with selection sel (the
// rows matched by the user's query).
func (e *Engine) Characterize(f *frame.Frame, sel *frame.Bitmap) (*Report, error) {
	return e.CharacterizeOpts(f, sel, Options{})
}

// CharacterizeOpts is Characterize with per-run options. Identical requests
// — same table content, same selection, same options — are served from the
// report-level memo: the first computes (concurrent duplicates wait for it
// rather than recomputing) and the rest are lookups, byte-identical to an
// uncached run except for the cache-hit flags and zeroed timings.
func (e *Engine) CharacterizeOpts(f *frame.Frame, sel *frame.Bitmap, opts Options) (*Report, error) {
	if f == nil {
		return nil, fmt.Errorf("core: nil frame")
	}
	if sel == nil {
		return nil, fmt.Errorf("core: nil selection")
	}
	if sel.Len() != f.NumRows() {
		return nil, fmt.Errorf("core: selection covers %d rows, table has %d", sel.Len(), f.NumRows())
	}
	nIn := sel.Count()
	nOut := f.NumRows() - nIn
	if nIn < e.cfg.MinRows || nOut < e.cfg.MinRows {
		return nil, fmt.Errorf("core: selection has %d rows inside and %d outside; need at least %d on each side",
			nIn, nOut, e.cfg.MinRows)
	}
	if opts.ApproxRows < 0 {
		return nil, fmt.Errorf("core: ApproxRows %d < 0", opts.ApproxRows)
	}
	if opts.SkipReportCache {
		return e.characterize(f, sel, opts, nIn)
	}
	key := reportKey{
		frame: f.Fingerprint(),
		sel:   sel.Fingerprint(),
		cfg:   e.cfgHash,
		opts:  hashOptions(opts),
	}
	rep, outcome, err := e.reports.c.Do(key, reportSize, func() (*Report, error) {
		return e.characterize(f, sel, opts, nIn)
	})
	if err != nil {
		return nil, err
	}
	if outcome == memo.Miss {
		return rep, nil
	}
	return cloneCached(rep), nil
}

// cloneCached hands out a cache-served report: a shallow copy so the flags
// and timings of the cached value stay pristine. Views, components and
// warnings are shared — reports are immutable by convention, like frames.
func cloneCached(rep *Report) *Report {
	clone := *rep
	clone.CacheHit = true
	clone.ReportCacheHit = true
	clone.Timings = Timings{}
	return &clone
}

// CachedReport returns the memoized report for (f, sel, opts) without
// running any part of the pipeline; ok is false on a miss. A hit counts
// toward the report cache's hit counter exactly as if the request had been
// served by CharacterizeOpts — the shard router uses this as its
// pre-admission fast path, so repeat queries stay ~µs even when the owning
// shard's queue is saturated by slow characterizations.
func (e *Engine) CachedReport(f *frame.Frame, sel *frame.Bitmap, opts Options) (*Report, bool) {
	if f == nil || sel == nil || sel.Len() != f.NumRows() {
		return nil, false
	}
	return e.CachedReportFingerprint(f.Fingerprint(), sel, opts)
}

// CachedReportFingerprint is CachedReport addressed by the table's content
// fingerprint instead of the table itself. It exists for the distribution
// layer: a front router (or a worker answering its cached-probe RPC) can ask
// "is this report already cached?" knowing only the fingerprint — before the
// table has been shipped to the process at all — so a repeat query crossing
// the process boundary is answered from the report cache without moving the
// table a second time.
func (e *Engine) CachedReportFingerprint(frameFP uint64, sel *frame.Bitmap, opts Options) (*Report, bool) {
	if sel == nil || opts.SkipReportCache {
		return nil, false
	}
	key := reportKey{
		frame: frameFP,
		sel:   sel.Fingerprint(),
		cfg:   e.cfgHash,
		opts:  hashOptions(opts),
	}
	rep, ok := e.reports.c.Lookup(key)
	if !ok {
		return nil, false
	}
	return cloneCached(rep), true
}

// characterize runs the full uncached pipeline; nIn is sel.Count(), already
// computed by the caller's validation.
func (e *Engine) characterize(f *frame.Frame, sel *frame.Bitmap, opts Options, nIn int) (*Report, error) {
	rep := &Report{SelectedRows: nIn, TotalRows: f.NumRows()}

	// ---- Stage 1: preparation -------------------------------------------
	t0 := time.Now()
	prep, hit, err := e.prepare(f)
	if err != nil {
		// Only reachable when a concurrent preparation leader panicked;
		// surface the condition instead of dereferencing a nil prepared.
		return nil, fmt.Errorf("core: preparing table: %w", err)
	}
	rep.CacheHit = hit
	// BlinkDB-style approximation: cap the rows feeding the per-query
	// statistics. The dependency structure stays exact (it is computed
	// once per table and cached).
	var consider *frame.Bitmap
	switch {
	case opts.ApproxRows > 0:
		// Approximate serving. The sampling stream mixes both content
		// fingerprints with the caller's seed, so distinct (table,
		// selection) pairs never share a sample, yet the same request is
		// byte-identical wherever it is computed. The provenance block is
		// set even when the cap covers every row (the sample is then the
		// whole table): approximate requested ⇒ Approximate non-nil, which
		// keeps the flag trustworthy for clients.
		seed := approxSampleSeed(f.Fingerprint(), sel.Fingerprint(), opts.ApproxSeed, opts.ApproxRows)
		consider = sample.Stratified(sel, opts.ApproxRows, e.cfg.MinRows, seed)
		sampled := consider.Count()
		rep.SampledRows = sampled
		inside := countInside(sel, consider)
		inflation := 1.0
		if sampled > 0 && sampled < f.NumRows() {
			inflation = math.Sqrt(float64(f.NumRows()) / float64(sampled))
		}
		rep.Approximate = &Approximate{
			SampleRows:  sampled,
			CapRows:     opts.ApproxRows,
			Seed:        opts.ApproxSeed,
			InsideRows:  inside,
			OutsideRows: sampled - inside,
			SEInflation: inflation,
		}
	case e.cfg.SampleRows > 0 && f.NumRows() > e.cfg.SampleRows:
		consider = sample.Stratified(sel, e.cfg.SampleRows, e.cfg.MinRows, sampleSeed)
		rep.SampledRows = consider.Count()
	}
	cols := e.splitColumns(f, sel, consider, rep)
	for _, name := range opts.ExcludeColumns {
		if idx := f.ColIndex(name); idx >= 0 {
			cols[idx].usable = false
		} else {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("excluded column %q does not exist", name))
		}
	}
	rep.Timings.Preparation = time.Since(t0)

	// ---- Stage 2: view search -------------------------------------------
	t1 := time.Now()
	candidates := e.generateCandidates(prep, cols)
	scored := e.scoreCandidates(f, sel, consider, cols, prep.dep, candidates)
	chosen := e.rankDisjoint(scored)
	rep.Timings.Search = time.Since(t1)

	// ---- Stage 3: post-processing ---------------------------------------
	t2 := time.Now()
	for i := range chosen {
		v := &chosen[i]
		sort.SliceStable(v.Components, func(a, b int) bool {
			return v.Components[a].Norm > v.Components[b].Norm
		})
		v.Explanation = explain.View(v.Columns, v.Components, e.cfg.Alpha)
	}
	rep.Views = chosen
	rep.Timings.Post = time.Since(t2)
	return rep, nil
}

// prepare returns the cached dependency matrix and dendrogram for f,
// computing them on first use. Concurrent first queries on the same table
// deduplicate: one computes, the rest wait and share the result. The error
// is non-nil only when a deduplicated wait ended because the computing
// leader panicked (memo.ErrComputePanicked).
func (e *Engine) prepare(f *frame.Frame) (*prepared, bool, error) {
	key := prepKey{frame: f.Fingerprint(), measure: e.cfg.Measure, linkage: e.cfg.Linkage}
	p, outcome, err := e.prep.Do(key, preparedSize, func() (*prepared, error) {
		dep := depend.NewMatrixParallel(f, e.cfg.Measure, e.workers())
		var dendro *cluster.Dendrogram
		if f.NumCols() >= 1 {
			d, err := cluster.Agglomerate(dep.Distances(), f.NumCols(), e.cfg.Linkage)
			if err == nil {
				dendro = d
			}
		}
		return &prepared{dep: dep, dendro: dendro}, nil
	})
	return p, outcome != memo.Miss, err
}

// sampleSeed fixes the subsampling stream so repeated characterizations of
// the same query are identical.
const sampleSeed = 0x5a1ad0c5

// approxSampleSeed derives the stratified-sampling seed of an approximate
// run from the request's full identity. Each input passes through the
// splitmix64 finalizer so nearby fingerprints or seeds land on unrelated
// streams; the result is a pure function of its arguments — the root of
// the approximate-path determinism guarantee.
func approxSampleSeed(frameFP, selFP, userSeed uint64, cap int) uint64 {
	h := uint64(0xa99d0c5a5a1ad0c5)
	for _, v := range [4]uint64{frameFP, selFP, userSeed, uint64(cap)} {
		h ^= v
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// countInside counts the sampled rows that lie inside the selection
// (sel ∧ consider), word at a time.
func countInside(sel, consider *frame.Bitmap) int {
	n := 0
	for wi, nw := 0, sel.WordCount(); wi < nw; wi++ {
		n += bits.OnesCount64(sel.WordAt(wi) & consider.WordAt(wi))
	}
	return n
}

// splitWords walks the selection one 64-bit word at a time and hands the
// caller two row masks per word: the considered in-rows (sel ∧ consider)
// and the considered out-rows (¬sel ∧ consider), with the final word's
// spare bits masked off. Set bits are then consumed with TrailingZeros64,
// so both split sides receive their rows in ascending order — exactly the
// order the old per-row Get loop produced — while skipping empty words and
// all per-row bitmap calls.
func splitWords(n int, sel, consider *frame.Bitmap, emit func(base int, inW, outW uint64)) {
	nw := sel.WordCount()
	for wi := 0; wi < nw; wi++ {
		base := wi << 6
		mask := ^uint64(0)
		if rem := n - base; rem < 64 {
			mask = 1<<uint(rem) - 1
		}
		if consider != nil {
			mask &= consider.WordAt(wi)
		}
		w := sel.WordAt(wi)
		emit(base, w&mask, ^w&mask)
	}
}

// splitNumericCol extracts the non-NULL values of a numeric column split
// by sel, restricted to the consider bitmap when non-nil.
func splitNumericCol(c *frame.Column, sel, consider *frame.Bitmap) (in, out []float64) {
	floats := c.Floats()
	splitWords(len(floats), sel, consider, func(base int, inW, outW uint64) {
		for ; inW != 0; inW &= inW - 1 {
			if v := floats[base+bits.TrailingZeros64(inW)]; !math.IsNaN(v) {
				in = append(in, v)
			}
		}
		for ; outW != 0; outW &= outW - 1 {
			if v := floats[base+bits.TrailingZeros64(outW)]; !math.IsNaN(v) {
				out = append(out, v)
			}
		}
	})
	return in, out
}

// splitCatCol extracts the non-NULL dictionary codes of a categorical
// column split by sel, restricted to consider when non-nil.
func splitCatCol(c *frame.Column, sel, consider *frame.Bitmap) (in, out []int32) {
	codes := c.Codes()
	splitWords(len(codes), sel, consider, func(base int, inW, outW uint64) {
		for ; inW != 0; inW &= inW - 1 {
			if code := codes[base+bits.TrailingZeros64(inW)]; code >= 0 {
				in = append(in, code)
			}
		}
		for ; outW != 0; outW &= outW - 1 {
			if code := codes[base+bits.TrailingZeros64(outW)]; code >= 0 {
				out = append(out, code)
			}
		}
	})
	return in, out
}

// splitColumns computes the Cᴵ/Cᴼ split and the 1D components per column,
// fanning the columns out across the engine's workers. Each task writes
// only cols[i], so the result is identical for every worker count; skip
// warnings are collected in column order afterwards.
func (e *Engine) splitColumns(f *frame.Frame, sel, consider *frame.Bitmap, rep *Report) []colData {
	cols := make([]colData, f.NumCols())
	workers := e.workers()
	scratches := newScratchPool(workers)
	par.For(workers, f.NumCols(), func(w, i int) {
		cols[i] = e.splitColumn(f.Col(i), i, sel, consider, &scratches.get(w).eff)
	})
	for i := range cols {
		if cols[i].warning != "" {
			rep.Warnings = append(rep.Warnings, cols[i].warning)
		}
	}
	return cols
}

// splitColumn computes one column's Cᴵ/Cᴼ split and 1D components.
func (e *Engine) splitColumn(c *frame.Column, idx int, sel, consider *frame.Bitmap, s *effect.Scratch) colData {
	cd := colData{idx: idx, name: c.Name(), kind: c.Kind()}
	switch c.Kind() {
	case frame.Numeric:
		in, out := splitNumericCol(c, sel, consider)
		cd.in, cd.out = in, out
		if len(in) < e.cfg.MinRows || len(out) < e.cfg.MinRows {
			cd.warning = fmt.Sprintf("column %q skipped: only %d/%d usable rows inside/outside", c.Name(), len(in), len(out))
			break
		}
		cd.usable = true
		// Rank-once hot path: in robust mode one scratch-backed ranking of
		// the in+out concatenation serves Cliff's delta, its Mann-Whitney
		// bound, both medians, and (extended) the quantile-shift test.
		var r stats.Ranking
		if e.cfg.Robust {
			r = effect.RankWith(s, in, out)
			cd.comps = append(cd.comps, effect.CliffDeltaRanked(c.Name(), r))
		} else {
			cd.comps = append(cd.comps, effect.Means(c.Name(), in, out))
		}
		cd.comps = append(cd.comps, effect.StdDevs(c.Name(), in, out))
		if e.cfg.Extended {
			if e.cfg.Robust {
				// Both extended numeric components read their order
				// statistics off the column's single Ranking: no
				// per-group copy is ever sorted on the robust path.
				cd.comps = append(cd.comps, effect.QuantilesRanked(c.Name(), in, out, r))
				cd.comps = append(cd.comps, effect.TailsRanked(c.Name(), in, out, r))
			} else {
				cd.comps = append(cd.comps, effect.Quantiles(c.Name(), in, out))
				cd.comps = append(cd.comps, effect.Tails(c.Name(), in, out))
			}
		}
	case frame.Categorical:
		in, out := splitCatCol(c, sel, consider)
		cd.inCodes, cd.outCodes, cd.dict = in, out, c.Dict()
		if len(in) < e.cfg.MinRows || len(out) < e.cfg.MinRows {
			cd.warning = fmt.Sprintf("column %q skipped: only %d/%d usable rows inside/outside", c.Name(), len(in), len(out))
			break
		}
		cd.usable = true
		cd.comps = append(cd.comps, effect.FrequenciesWith(s, c.Name(), in, out, cd.dict))
		if e.cfg.Extended {
			cd.comps = append(cd.comps, effect.EntropyWith(s, c.Name(), in, out, cd.dict))
		}
	}
	cd.score = effect.Score(cd.comps, e.cfg.Weights)
	return cd
}

// generateCandidates produces tight column groups of size ≤ MaxDim.
func (e *Engine) generateCandidates(prep *prepared, cols []colData) [][]int {
	var groups [][]int
	switch e.cfg.Generator {
	case Cliques:
		dep := prep.dep
		n := dep.Len()
		vals := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				vals[i*n+j] = dep.At(i, j)
			}
		}
		g := cluster.GraphFromThreshold(vals, n, e.cfg.MinTight)
		groups = g.MaximalCliques(e.cfg.MaxCliques)
	default:
		if prep.dendro == nil {
			return nil
		}
		// Complete-linkage height h groups columns with max pairwise
		// distance ≤ h, i.e. min pairwise dependency ≥ 1-h = MinTight.
		groups = prep.dendro.CutAt(1 - e.cfg.MinTight)
	}

	seen := make(map[string]bool)
	var out [][]int
	for _, g := range groups {
		for _, cand := range e.packGroup(g, prep.dep, cols) {
			key := fmt.Sprint(cand)
			if !seen[key] {
				seen[key] = true
				out = append(out, cand)
			}
		}
	}
	return out
}

// packGroup splits a candidate group into views of at most MaxDim columns,
// greedily grouping the highest-scoring columns while re-verifying the
// tightness constraint (subset tightness is guaranteed under complete
// linkage but not under single/average linkage or loose clique packing).
func (e *Engine) packGroup(group []int, dep *depend.Matrix, cols []colData) [][]int {
	usable := make([]int, 0, len(group))
	for _, idx := range group {
		if cols[idx].usable {
			usable = append(usable, idx)
		}
	}
	if len(usable) == 0 {
		return nil
	}
	sort.SliceStable(usable, func(a, b int) bool {
		return cols[usable[a]].score > cols[usable[b]].score
	})

	var views [][]int
	taken := make([]bool, len(usable))
	for s := 0; s < len(usable); s++ {
		if taken[s] {
			continue
		}
		view := []int{usable[s]}
		taken[s] = true
		for t := s + 1; t < len(usable) && len(view) < e.cfg.MaxDim; t++ {
			if taken[t] {
				continue
			}
			ok := true
			for _, m := range view {
				if dep.At(m, usable[t]) < e.cfg.MinTight {
					ok = false
					break
				}
			}
			if ok {
				view = append(view, usable[t])
				taken[t] = true
			}
		}
		sort.Ints(view)
		views = append(views, view)
	}
	return views
}

// scoreCandidates materializes Views (without explanations) for candidate
// index groups, fanning the candidates out across the engine's workers.
// Each task writes only views[i] and uses its worker's private scratch for
// the effect and hypothesis computations, so the scored views are identical
// for every worker count.
func (e *Engine) scoreCandidates(f *frame.Frame, sel, consider *frame.Bitmap, cols []colData, dep *depend.Matrix, candidates [][]int) []View {
	views := make([]View, len(candidates))
	workers := e.workers()
	scratches := newScratchPool(workers)
	par.For(workers, len(candidates), func(w, i int) {
		views[i] = e.scoreCandidate(f, sel, consider, cols, dep, candidates[i], scratches.get(w))
	})
	return views
}

// scoreCandidate scores one candidate column group, computing the pairwise
// correlation components lazily.
func (e *Engine) scoreCandidate(f *frame.Frame, sel, consider *frame.Bitmap, cols []colData, dep *depend.Matrix, cand []int, s *scoreScratch) View {
	var comps []effect.Component
	for _, idx := range cand {
		comps = append(comps, cols[idx].comps...)
	}
	// Two-dimensional components for column pairs inside the view:
	// correlation differences for numeric pairs (Figure 3) and, in
	// extended mode, separation changes for mixed pairs.
	for a := 0; a < len(cand); a++ {
		for b := a + 1; b < len(cand); b++ {
			ca, cb := cols[cand[a]], cols[cand[b]]
			switch {
			case ca.kind == frame.Numeric && cb.kind == frame.Numeric:
				inA, inB, outA, outB := s.alignedSplit(f.Col(ca.idx), f.Col(cb.idx), sel, consider)
				comps = append(comps, effect.Correlations(ca.name, cb.name, inA, inB, outA, outB))
			case e.cfg.Extended && ca.kind == frame.Categorical && cb.kind == frame.Numeric:
				comps = append(comps, mixedSeparation(f, ca, cb, sel, consider, s))
			case e.cfg.Extended && ca.kind == frame.Numeric && cb.kind == frame.Categorical:
				comps = append(comps, mixedSeparation(f, cb, ca, sel, consider, s))
			}
		}
	}

	names := make([]string, len(cand))
	for i, idx := range cand {
		names[i] = cols[idx].name
	}
	ps := make([]float64, 0, len(comps))
	for _, c := range comps {
		ps = append(ps, c.Test.P)
	}
	p := hypo.Combine(ps, e.cfg.Aggregation)
	return View{
		Columns:     names,
		Score:       effect.Score(comps, e.cfg.Weights),
		Tightness:   dep.MinPairwise(cand),
		Components:  comps,
		PValue:      p,
		Significant: !math.IsNaN(p) && p < e.cfg.Alpha,
	}
}

// mixedSeparation computes the extended DiffSeparation component for a
// categorical × numeric pair.
func mixedSeparation(f *frame.Frame, cat, num colData, sel, consider *frame.Bitmap, s *scoreScratch) effect.Component {
	cc := f.Col(cat.idx)
	nc := f.Col(num.idx)
	catIn, numIn, catOut, numOut := s.mixedSplit(cc, nc, sel, consider)
	return effect.Separation(cat.name, num.name, catIn, numIn, catOut, numOut, cc.Cardinality())
}

// rankDisjoint orders candidates by decreasing score and greedily keeps
// those sharing no column with an already-kept view (Equation 4), stopping
// at MaxViews.
func (e *Engine) rankDisjoint(views []View) []View {
	sort.SliceStable(views, func(i, j int) bool {
		if views[i].Score != views[j].Score {
			return views[i].Score > views[j].Score
		}
		// Deterministic tie-break on column names.
		return fmt.Sprint(views[i].Columns) < fmt.Sprint(views[j].Columns)
	})
	used := make(map[string]bool)
	var out []View
	for _, v := range views {
		if len(out) >= e.cfg.MaxViews {
			break
		}
		if e.cfg.RequireSignificant && !v.Significant {
			continue
		}
		overlap := false
		for _, c := range v.Columns {
			if used[c] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		for _, c := range v.Columns {
			used[c] = true
		}
		out = append(out, v)
	}
	return out
}
