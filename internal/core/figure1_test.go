package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/effect"
	"repro/internal/synth"
)

// crimeSelection runs the paper's running-example query — communities above
// the 90th percentile of violent crime — through the SQL layer and returns
// the table plus selection mask.
func crimeSelection(t testing.TB, seed uint64) (*synth.PlantedData, *db.Result) {
	t.Helper()
	f := synth.USCrime(seed)
	q90, err := synth.QuantileOf(f, "crime_violent_rate", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cat := db.NewCatalog()
	if err := cat.Register(f); err != nil {
		t.Fatal(err)
	}
	res, err := cat.Query(fmt.Sprintf("SELECT * FROM uscrime WHERE crime_violent_rate >= %g", q90))
	if err != nil {
		t.Fatal(err)
	}
	return nil, res
}

// crimeColumns lists the outcome columns excluded from Figure 1 views (the
// query itself constrains them).
func crimeColumns(res *db.Result) []string {
	var out []string
	for _, name := range res.Base.ColumnNames() {
		if strings.HasPrefix(name, "crime_") || name == "arson_count" || name == "gang_incidents" {
			out = append(out, name)
		}
	}
	return out
}

// TestFigure1CharacteristicViews is the repository's acceptance test for
// the paper's Figure 1: a high-crime selection on the US Crime twin must
// surface the four socio-economic themes with the documented directions.
func TestFigure1CharacteristicViews(t *testing.T) {
	_, res := crimeSelection(t, 42)
	cfg := DefaultConfig()
	cfg.MaxViews = 12
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.CharacterizeOpts(res.Base, res.Mask, Options{ExcludeColumns: crimeColumns(res)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Views) < 4 {
		t.Fatalf("found only %d views", len(rep.Views))
	}

	// Theme detectors: each Figure 1 view is identified by its columns'
	// prefix family and the direction of its mean component.
	type theme struct {
		name      string
		match     func(col string) bool
		direction float64 // +1 selection higher, -1 selection lower
		found     bool
	}
	themes := []theme{
		{name: "demographics (pop/density ↑)", direction: +1, match: func(c string) bool {
			return c == "population" || c == "pop_density" || c == "pct_urban" ||
				c == "housing_units_density" || strings.HasPrefix(c, "urban_")
		}},
		{name: "education/income (↓)", direction: -1, match: func(c string) bool {
			return c == "pct_college_educ" || c == "avg_salary" || c == "median_income" ||
				c == "per_capita_income" || c == "pct_highschool_grad" ||
				c == "pct_advanced_degree" || strings.HasPrefix(c, "income_")
		}},
		{name: "housing (rent/ownership ↓)", direction: -1, match: func(c string) bool {
			return c == "avg_rent" || c == "pct_home_owners" || c == "median_home_value" ||
				c == "pct_owner_occupied" || c == "avg_rooms_per_dwelling" ||
				strings.HasPrefix(c, "housing_indicator")
		}},
		{name: "family/age (young/monoparental ↑)", direction: +1, match: func(c string) bool {
			return c == "pct_monoparental" || c == "pct_under_25" || c == "pct_divorced" ||
				c == "pct_never_married" || strings.HasPrefix(c, "family_")
		}},
	}

	for _, v := range rep.Views {
		for ti := range themes {
			th := &themes[ti]
			if th.found {
				continue
			}
			all := true
			for _, c := range v.Columns {
				if !th.match(c) {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			// Verify the direction on the view's mean components.
			for _, comp := range v.Components {
				if comp.Kind == effect.DiffMeans && comp.Valid() {
					if comp.Raw*th.direction <= 0 {
						t.Errorf("theme %s: component on %v has wrong direction (raw=%v)",
							th.name, comp.Columns, comp.Raw)
					}
				}
			}
			th.found = true
		}
	}
	for _, th := range themes {
		if !th.found {
			var got []string
			for _, v := range rep.Views {
				got = append(got, fmt.Sprint(v.Columns))
			}
			t.Errorf("theme %q not found among views: %v", th.name, got)
		}
	}
}

// TestFigure1BoardedWindows checks the §4.2 claim: the "seemingly
// superfluous" boarded-windows indicator has strong predictive power for
// crime, i.e. without exclusions it surfaces in a top view.
func TestFigure1BoardedWindows(t *testing.T) {
	_, res := crimeSelection(t, 42)
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Characterize(res.Base, res.Mask)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rep.Views {
		if i >= 3 {
			break
		}
		for _, c := range v.Columns {
			if c == "pct_boarded_windows" {
				return
			}
		}
	}
	t.Error("pct_boarded_windows not in the top-3 views")
}

func TestExcludeColumnsOption(t *testing.T) {
	_, res := crimeSelection(t, 7)
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	excluded := crimeColumns(res)
	rep, err := e.CharacterizeOpts(res.Base, res.Mask, Options{ExcludeColumns: excluded})
	if err != nil {
		t.Fatal(err)
	}
	bad := make(map[string]bool, len(excluded))
	for _, c := range excluded {
		bad[c] = true
	}
	for _, v := range rep.Views {
		for _, c := range v.Columns {
			if bad[c] {
				t.Errorf("excluded column %q appeared in view %v", c, v.Columns)
			}
		}
	}
	// Unknown exclusions warn but do not fail.
	rep2, err := e.CharacterizeOpts(res.Base, res.Mask, Options{ExcludeColumns: []string{"no_such_col"}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range rep2.Warnings {
		if strings.Contains(w, "no_such_col") {
			found = true
		}
	}
	if !found {
		t.Error("missing warning for unknown excluded column")
	}
}
