package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/effect"
	"repro/internal/frame"
	"repro/internal/hypo"
	"repro/internal/randx"
)

// testEngine builds a sequential engine plus a small table (6 numeric
// columns, 90 rows) with a planted shift so characterizations are fast and
// produce non-trivial views.
func testEngine(t *testing.T, cfg Config) (*Engine, *frame.Frame, *frame.Bitmap) {
	t.Helper()
	cfg.Parallelism = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 90
	rng := randx.New(11)
	sel := frame.NewBitmap(rows)
	for i := 0; i < rows/3; i++ {
		sel.Set(i)
	}
	cols := make([]*frame.Column, 6)
	for c := range cols {
		vals := make([]float64, rows)
		for i := range vals {
			vals[i] = rng.NormFloat64()
			if sel.Get(i) && c < 3 {
				vals[i] += 2
			}
		}
		cols[c] = frame.NewNumericColumn(fmt.Sprintf("c%d", c), vals)
	}
	return e, frame.MustNew("wire", cols), sel
}

// wireFixture is a report exercising every field the codec carries: NaN and
// ±Inf floats (which JSON cannot represent), empty and non-ASCII strings,
// nil and populated slices, and both cache flags.
func wireFixture() *Report {
	return &Report{
		SelectedRows: 42,
		TotalRows:    1994,
		SampledRows:  100,
		Timings:      Timings{Preparation: 3 * time.Millisecond, Search: 5 * time.Millisecond, Post: time.Microsecond},
		Warnings:     []string{"column \"naïve\" skipped", ""},
		CacheHit:     true,
		Views: []View{
			{
				Columns:     []string{"a", "b"},
				Score:       1.25,
				Tightness:   0.5,
				PValue:      math.NaN(),
				Significant: false,
				Explanation: "inside ≫ outside",
				Components: []effect.Component{
					{
						Kind:    effect.DiffMeans,
						Columns: []string{"a"},
						Raw:     math.Inf(1),
						Norm:    1,
						Inside:  math.Copysign(0, -1),
						Outside: math.Inf(-1),
						Test:    hypo.Result{Stat: 2.5, DF: 17, DF2: math.NaN(), P: 0.01},
						Detail:  "category «x»",
					},
					{Kind: effect.DiffStdDevs, Raw: math.NaN(), Norm: math.NaN(), Test: hypo.Result{P: math.NaN()}},
				},
			},
			{Columns: []string{"c"}, PValue: 0.2},
		},
	}
}

// approxWireFixture is wireFixture with approximate provenance attached —
// the payload that must travel as a version-2 partial-report frame.
func approxWireFixture() *Report {
	rep := wireFixture()
	rep.Approximate = &Approximate{
		SampleRows:  100,
		CapRows:     512,
		Seed:        0xa5a5_5a5a_0123_4567,
		InsideRows:  33,
		OutsideRows: 67,
		SEInflation: 4.46654,
	}
	return rep
}

// TestReportCodecRoundTrip pins decode(encode(r)) == r at the byte level:
// re-encoding the decoded report reproduces the original bytes exactly, and
// the NaN/Inf fields survive (reflect.DeepEqual cannot check NaN equality,
// so the canonical-bytes property is the contract).
func TestReportCodecRoundTrip(t *testing.T) {
	for name, rep := range map[string]*Report{
		"full":   wireFixture(),
		"empty":  {},
		"approx": approxWireFixture(),
	} {
		enc := EncodeReport(rep)
		dec, err := DecodeReport(enc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if re := EncodeReport(dec); !bytes.Equal(re, enc) {
			t.Errorf("%s: re-encoded report differs from original encoding", name)
		}
		if name != "full" {
			continue
		}
		if !math.IsNaN(dec.Views[0].PValue) || !math.IsInf(dec.Views[0].Components[0].Raw, 1) {
			t.Error("NaN/Inf floats did not survive the round trip")
		}
		if math.Signbit(dec.Views[0].Components[0].Inside) != true {
			t.Error("negative zero did not survive the round trip")
		}
		if dec.Views[0].Explanation != "inside ≫ outside" || dec.Warnings[0] != "column \"naïve\" skipped" {
			t.Error("non-ASCII strings did not survive the round trip")
		}
		if dec.Timings != wireFixture().Timings || !dec.CacheHit || dec.ReportCacheHit {
			t.Errorf("scalar fields diverged: %+v", dec)
		}
	}
}

// TestReportCodecEngineOutput round-trips a real characterization, the
// payload the remote layer actually ships.
func TestReportCodecEngineOutput(t *testing.T) {
	eng, f, sel := testEngine(t, DefaultConfig())
	rep, err := eng.Characterize(f, sel)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeReport(rep)
	dec, err := DecodeReport(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeReport(dec), enc) {
		t.Error("engine report did not survive the round trip")
	}
	if len(dec.Views) != len(rep.Views) || dec.SelectedRows != rep.SelectedRows {
		t.Errorf("decoded %d views / %d rows, want %d / %d", len(dec.Views), dec.SelectedRows, len(rep.Views), rep.SelectedRows)
	}
}

// TestPartialReportFrame pins the version-2 framing contract: exact reports
// keep their version-1 bytes untouched (goldens and baselines depend on
// byte identity), approximate reports are framed as version 2 with the
// provenance block intact, and the version byte is the on-wire flag.
func TestPartialReportFrame(t *testing.T) {
	exact := EncodeReport(wireFixture())
	if !bytes.Equal(exact[:4], []byte("ZGR\x01")) {
		t.Fatalf("exact report framed as %q, want version 1", exact[:4])
	}

	approx := EncodeReport(approxWireFixture())
	if !bytes.Equal(approx[:4], []byte("ZGR\x02")) {
		t.Fatalf("approximate report framed as %q, want version 2", approx[:4])
	}
	// Past the approx block, the body is the version-1 body unchanged.
	if !bytes.Equal(approx[4+6*8:], exact[4:]) {
		t.Error("version-2 body diverged from the version-1 layout")
	}

	dec, err := DecodeReport(approx)
	if err != nil {
		t.Fatal(err)
	}
	want := approxWireFixture().Approximate
	if dec.Approximate == nil || *dec.Approximate != *want {
		t.Errorf("approximate block = %+v, want %+v", dec.Approximate, want)
	}
	// A version-1 payload decodes with no approximate block.
	decExact, err := DecodeReport(exact)
	if err != nil {
		t.Fatal(err)
	}
	if decExact.Approximate != nil {
		t.Error("version-1 payload decoded with an approximate block")
	}
}

// TestReportCodecRejectsCorruption covers the strict-decode error paths for
// both frame versions.
func TestReportCodecRejectsCorruption(t *testing.T) {
	enc := EncodeReport(wireFixture())
	encApprox := EncodeReport(approxWireFixture())
	cases := map[string][]byte{
		"empty":           {},
		"short header":    enc[:3],
		"bad magic":       append([]byte("XXX\x01"), enc[4:]...),
		"future version":  append([]byte("ZGR\x63"), enc[4:]...),
		"version 3":       append([]byte("ZGR\x03"), encApprox[4:]...),
		"truncated":       enc[:len(enc)/2],
		"trailing bytes":  append(append([]byte(nil), enc...), 0),
		"oversized count": append(append([]byte(nil), enc[:4]...), bytes.Repeat([]byte{0xff}, 64)...),
		// Version-2 frames get the same strictness: a truncation inside the
		// approx block, mid-body truncation, and trailing garbage all fail.
		"v2 short approx block": encApprox[:4+3*8],
		"v2 truncated":          encApprox[:len(encApprox)/2],
		"v2 trailing bytes":     append(append([]byte(nil), encApprox...), 0),
		// Cross-version confusion is a decode error, not a misparse: a
		// version-1 body under a version-2 header reads 48 bytes of approx
		// block that are not there, and vice versa leaves 48 bytes trailing.
		"v1 body under v2 header": append([]byte("ZGR\x02"), enc[4:]...),
		"v2 body under v1 header": append([]byte("ZGR\x01"), encApprox[4:]...),
	}
	for name, data := range cases {
		if _, err := DecodeReport(data); err == nil {
			t.Errorf("%s: decode accepted corrupted payload", name)
		}
	}
	// A corrupted bool byte (anything but 0/1) is rejected, not coerced.
	for name, enc := range map[string][]byte{"v1": enc, "v2": encApprox} {
		bad := append([]byte(nil), enc...)
		bad[len(bad)-1] = 7
		if _, err := DecodeReport(bad); err == nil {
			t.Errorf("%s: invalid bool byte accepted", name)
		}
	}
}

// TestCachedReportFingerprint pins the by-fingerprint probe surface: a probe
// with the table's fingerprint hits after the table was characterized (no
// frame in hand), counts as a served request, and misses for foreign
// fingerprints, mismatched options, and SkipReportCache.
func TestCachedReportFingerprint(t *testing.T) {
	eng, f, sel := testEngine(t, DefaultConfig())
	if _, ok := eng.CachedReportFingerprint(f.Fingerprint(), sel, Options{}); ok {
		t.Fatal("probe hit before anything was cached")
	}
	if _, err := eng.Characterize(f, sel); err != nil {
		t.Fatal(err)
	}
	rep, ok := eng.CachedReportFingerprint(f.Fingerprint(), sel, Options{})
	if !ok || !rep.ReportCacheHit {
		t.Fatal("probe missed the cached report")
	}
	if _, ok := eng.CachedReportFingerprint(f.Fingerprint()+1, sel, Options{}); ok {
		t.Error("probe hit a foreign fingerprint")
	}
	if _, ok := eng.CachedReportFingerprint(f.Fingerprint(), sel, Options{ExcludeColumns: []string{"x"}}); ok {
		t.Error("probe ignored the options hash")
	}
	if _, ok := eng.CachedReportFingerprint(f.Fingerprint(), sel, Options{SkipReportCache: true}); ok {
		t.Error("probe ignored SkipReportCache")
	}
	if _, ok := eng.CachedReportFingerprint(f.Fingerprint(), nil, Options{}); ok {
		t.Error("probe accepted a nil selection")
	}
	snap := eng.CacheStats().Reports
	if snap.Hits != 1 || snap.Misses != 1 {
		t.Errorf("reports tier = %+v, want exactly the probe hit and the cold miss", snap)
	}
}
