package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/frame"
	"repro/internal/par"
	"repro/internal/synth"
)

// TestConcurrentCharacterize exercises the engine from many goroutines
// sharing one cache: results must be deterministic and the cache must not
// corrupt under the race detector.
func TestConcurrentCharacterize(t *testing.T) {
	pd := plantedFixture(t, 50)
	e := defaultEngine(t)

	// Reference run.
	want, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Alternate between the original selection and its complement
			// so both cache paths are hit concurrently.
			sel := pd.Selection
			if worker%2 == 1 {
				sel = pd.Selection.Clone().Not()
			}
			for i := 0; i < 5; i++ {
				rep, err := e.Characterize(pd.Frame, sel)
				if err != nil {
					errs <- err
					return
				}
				if worker%2 == 0 {
					if len(rep.Views) != len(want.Views) {
						errs <- fmt.Errorf("worker %d: %d views, want %d", worker, len(rep.Views), len(want.Views))
						return
					}
					for vi := range rep.Views {
						if rep.Views[vi].Score != want.Views[vi].Score {
							errs <- fmt.Errorf("worker %d: score drift on view %d", worker, vi)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentDistinctFrames runs characterizations of different tables
// through one engine concurrently; cache keys must not collide.
func TestConcurrentDistinctFrames(t *testing.T) {
	e := defaultEngine(t)
	frames := make([]*frame.Frame, 4)
	sels := make([]*frame.Bitmap, 4)
	for i := range frames {
		pd, err := synth.Planted(synth.PlantedConfig{
			Seed: uint64(60 + i), Rows: 800, SelectionFraction: 0.3,
			Views:     []synth.PlantedView{{Cols: 2, WithinCorr: 0.7, MeanShift: 1.5}},
			NoiseCols: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = pd.Frame
		sels[i] = pd.Selection
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(frames)*3)
	for round := 0; round < 3; round++ {
		for i := range frames {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rep, err := e.Characterize(frames[i], sels[i])
				if err != nil {
					errs <- err
					return
				}
				if len(rep.Views) == 0 {
					errs <- fmt.Errorf("frame %d: no views", i)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentCharacterizeParallelEngine layers the two levels of
// concurrency: many goroutines calling Characterize on ONE engine whose
// internal stages themselves fan out across workers. Run under -race, this
// is the main guard for the worker pool's shared-state discipline.
func TestConcurrentCharacterizeParallelEngine(t *testing.T) {
	pd := plantedFixture(t, 55)
	cfg := DefaultConfig()
	cfg.Parallelism = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(ref)

	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				rep, err := e.Characterize(pd.Frame, pd.Selection)
				if err != nil {
					errs <- err
					return
				}
				if got := fingerprint(rep); got != want {
					errs <- fmt.Errorf("worker %d run %d: output drifted from reference", worker, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestInvalidateCacheDuringRuns hammers InvalidateCache while parallel
// characterizations are in flight: every run must still succeed and produce
// the reference output, whichever side of an invalidation it lands on.
func TestInvalidateCacheDuringRuns(t *testing.T) {
	pd := plantedFixture(t, 56)
	cfg := DefaultConfig()
	cfg.Parallelism = 2
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(ref)

	stop := make(chan struct{})
	var invalidatorWG sync.WaitGroup
	invalidatorWG.Add(1)
	go func() {
		defer invalidatorWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.InvalidateCache()
			}
		}
	}()

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				rep, err := e.Characterize(pd.Frame, pd.Selection)
				if err != nil {
					errs <- err
					return
				}
				if got := fingerprint(rep); got != want {
					errs <- fmt.Errorf("worker %d run %d: output drifted during cache churn", worker, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	invalidatorWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPoolCoversAllTasks verifies the pool's core contract: every task in
// [0, n) runs exactly once, for worker counts below, at, and above n.
func TestPoolCoversAllTasks(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 16} {
		for _, n := range []int{0, 1, 7, 1000} {
			hits := make([]int32, n)
			par.For(workers, n, func(worker, task int) {
				if worker < 0 || worker >= workers {
					t.Errorf("workers=%d n=%d: worker index %d out of range", workers, n, worker)
				}
				atomic.AddInt32(&hits[task], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: task %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestPoolPanicPropagation asserts a task panic resurfaces on the calling
// goroutine wrapped in *par.Panic — identically for the inline sequential
// path and the goroutine fan-out — with the original value and the worker
// stack preserved, and error panic values reachable through errors.As.
func TestPoolPanicPropagation(t *testing.T) {
	sentinel := errors.New("task exploded")
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				p, ok := r.(*par.Panic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *par.Panic", workers, r)
				}
				if p.Value != sentinel {
					t.Errorf("workers=%d: panic value %v, want sentinel", workers, p.Value)
				}
				if len(p.Stack) == 0 {
					t.Errorf("workers=%d: worker stack not captured", workers)
				}
				if !errors.Is(p, sentinel) {
					t.Errorf("workers=%d: errors.Is cannot reach the wrapped error", workers)
				}
			}()
			par.For(workers, 8, func(_, task int) {
				if task == 3 {
					panic(sentinel)
				}
			})
		}()
	}
}

// TestPoolCancellationAfterPanic asserts a panic cancels the pending task
// backlog: after one task dies, workers stop draining the queue instead of
// running all remaining tasks.
func TestPoolCancellationAfterPanic(t *testing.T) {
	const n = 1 << 20
	var executed atomic.Int64
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		par.For(4, n, func(_, task int) {
			executed.Add(1)
			if task == 0 {
				panic("early death")
			}
		})
	}()
	if got := executed.Load(); got >= n {
		t.Fatalf("all %d tasks ran despite the panic; cancellation is broken", n)
	}
}

// TestPoolPanicInEngineSurfaces sanity-checks that a panic inside a
// parallel engine stage crosses Characterize's goroutines rather than
// hanging or vanishing (nil frame columns are impossible through the public
// API, so this drives the pool directly with engine-sized inputs).
func TestPoolPanicInEngineSurfaces(t *testing.T) {
	if runtime.NumCPU() < 1 {
		t.Skip("no CPUs?")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected propagated panic")
		}
	}()
	par.For(par.Workers(0), 128, func(_, task int) {
		if task == 64 {
			var c *frame.Column
			_ = c.Len() // nil-pointer panic from a realistic callee
		}
	})
}

// TestRepeatedRunsAreDeterministic guards against map-iteration order or
// other nondeterminism leaking into the ranking.
func TestRepeatedRunsAreDeterministic(t *testing.T) {
	pd := plantedFixture(t, 70)
	e := defaultEngine(t)
	var first *Report
	for run := 0; run < 5; run++ {
		rep, err := e.Characterize(pd.Frame, pd.Selection)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = rep
			continue
		}
		if len(rep.Views) != len(first.Views) {
			t.Fatalf("run %d: view count drift", run)
		}
		for i := range rep.Views {
			if rep.Views[i].Score != first.Views[i].Score ||
				fmt.Sprint(rep.Views[i].Columns) != fmt.Sprint(first.Views[i].Columns) ||
				rep.Views[i].Explanation != first.Views[i].Explanation {
				t.Fatalf("run %d: view %d drifted", run, i)
			}
		}
	}
}
