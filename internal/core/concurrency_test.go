package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/frame"
	"repro/internal/synth"
)

// TestConcurrentCharacterize exercises the engine from many goroutines
// sharing one cache: results must be deterministic and the cache must not
// corrupt under the race detector.
func TestConcurrentCharacterize(t *testing.T) {
	pd := plantedFixture(t, 50)
	e := defaultEngine(t)

	// Reference run.
	want, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Alternate between the original selection and its complement
			// so both cache paths are hit concurrently.
			sel := pd.Selection
			if worker%2 == 1 {
				sel = pd.Selection.Clone().Not()
			}
			for i := 0; i < 5; i++ {
				rep, err := e.Characterize(pd.Frame, sel)
				if err != nil {
					errs <- err
					return
				}
				if worker%2 == 0 {
					if len(rep.Views) != len(want.Views) {
						errs <- fmt.Errorf("worker %d: %d views, want %d", worker, len(rep.Views), len(want.Views))
						return
					}
					for vi := range rep.Views {
						if rep.Views[vi].Score != want.Views[vi].Score {
							errs <- fmt.Errorf("worker %d: score drift on view %d", worker, vi)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentDistinctFrames runs characterizations of different tables
// through one engine concurrently; cache keys must not collide.
func TestConcurrentDistinctFrames(t *testing.T) {
	e := defaultEngine(t)
	frames := make([]*frame.Frame, 4)
	sels := make([]*frame.Bitmap, 4)
	for i := range frames {
		pd, err := synth.Planted(synth.PlantedConfig{
			Seed: uint64(60 + i), Rows: 800, SelectionFraction: 0.3,
			Views:     []synth.PlantedView{{Cols: 2, WithinCorr: 0.7, MeanShift: 1.5}},
			NoiseCols: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = pd.Frame
		sels[i] = pd.Selection
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(frames)*3)
	for round := 0; round < 3; round++ {
		for i := range frames {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rep, err := e.Characterize(frames[i], sels[i])
				if err != nil {
					errs <- err
					return
				}
				if len(rep.Views) == 0 {
					errs <- fmt.Errorf("frame %d: no views", i)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRepeatedRunsAreDeterministic guards against map-iteration order or
// other nondeterminism leaking into the ranking.
func TestRepeatedRunsAreDeterministic(t *testing.T) {
	pd := plantedFixture(t, 70)
	e := defaultEngine(t)
	var first *Report
	for run := 0; run < 5; run++ {
		rep, err := e.Characterize(pd.Frame, pd.Selection)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = rep
			continue
		}
		if len(rep.Views) != len(first.Views) {
			t.Fatalf("run %d: view count drift", run)
		}
		for i := range rep.Views {
			if rep.Views[i].Score != first.Views[i].Score ||
				fmt.Sprint(rep.Views[i].Columns) != fmt.Sprint(first.Views[i].Columns) ||
				rep.Views[i].Explanation != first.Views[i].Explanation {
				t.Fatalf("run %d: view %d drifted", run, i)
			}
		}
	}
}
