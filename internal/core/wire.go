package core

import (
	"fmt"
	"time"

	"repro/internal/effect"
	"repro/internal/hypo"
	"repro/internal/wire"
)

// This file is the report wire codec: a versioned binary serialization of
// core.Report for the multi-process serving layer (internal/remote). It is
// built on the shared primitives of internal/wire, and the contract is
// strong: DecodeReport(EncodeReport(r)) reproduces r exactly, including NaN
// p-values and NaN payload bits that JSON cannot carry, so a report served
// by a remote worker is byte-identical (re-encoded) to one computed in
// process. TestRemoteDeterminism and the ziggyd golden suite lean on this.
//
// Layout (version 1), after the 4-byte magic "ZGR\x01":
//
//	report  := selectedRows totalRows sampledRows timings warnings views flags
//	timings := prepNanos searchNanos postNanos          (3 × u64)
//	warnings:= count {string}*
//	views   := count {view}*
//	view    := columns score tightness pValue significant explanation comps
//	comps   := count {comp}*
//	comp    := kind columns raw norm inside outside stat df df2 p detail
//
// Version 2 is the partial-report frame for sample-based approximate
// answers: after the magic "ZGR\x02" comes an approx provenance block, then
// the version-1 body unchanged:
//
//	approx  := sampleRows capRows seed insideRows outsideRows seInflation
//
// Exact reports still encode as version 1 — their bytes are identical to
// every previously recorded golden and baseline — and only reports carrying
// an Approximate block use version 2, so the frame version doubles as the
// on-the-wire approximate flag. Decoders built at version 2 read both; a
// version-1 decoder rejects a version-2 frame loudly (unsupported version),
// never as a silently misparsed exact report.
//
// Decoding is strict: bad magic, an unknown version, truncation, oversized
// counts and trailing bytes are all errors, never a partially decoded
// report.

// reportWireVersion is the newest layout this build writes and reads; it is
// bumped whenever the layout changes. Version 1 payloads remain readable.
const reportWireVersion = 2

// reportMagic prefixes every exact encoded report: three fixed bytes plus
// version 1.
var reportMagic = [4]byte{'Z', 'G', 'R', 1}

// reportMagicApprox prefixes every approximate (partial) report frame.
var reportMagicApprox = [4]byte{'Z', 'G', 'R', reportWireVersion}

const decodingReport = "core: decoding report"

// EncodeReport serializes a report in the versioned wire format. The
// encoding is canonical: equal reports encode to equal bytes, so encoded
// reports can be byte-compared (the determinism suites do). Exact reports
// encode as version 1; reports with an Approximate block encode as the
// version-2 partial-report frame.
func EncodeReport(rep *Report) []byte {
	var w wire.Buf
	if rep.Approximate == nil {
		w.B = append(w.B, reportMagic[:]...)
	} else {
		w.B = append(w.B, reportMagicApprox[:]...)
		a := rep.Approximate
		w.I64(int64(a.SampleRows))
		w.I64(int64(a.CapRows))
		w.U64(a.Seed)
		w.I64(int64(a.InsideRows))
		w.I64(int64(a.OutsideRows))
		w.F64(a.SEInflation)
	}
	w.I64(int64(rep.SelectedRows))
	w.I64(int64(rep.TotalRows))
	w.I64(int64(rep.SampledRows))
	w.I64(int64(rep.Timings.Preparation))
	w.I64(int64(rep.Timings.Search))
	w.I64(int64(rep.Timings.Post))
	w.Strs(rep.Warnings)
	w.U64(uint64(len(rep.Views)))
	for i := range rep.Views {
		v := &rep.Views[i]
		w.Strs(v.Columns)
		w.F64(v.Score)
		w.F64(v.Tightness)
		w.F64(v.PValue)
		w.Bool(v.Significant)
		w.Str(v.Explanation)
		w.U64(uint64(len(v.Components)))
		for _, c := range v.Components {
			w.I64(int64(c.Kind))
			w.Strs(c.Columns)
			w.F64(c.Raw)
			w.F64(c.Norm)
			w.F64(c.Inside)
			w.F64(c.Outside)
			w.F64(c.Test.Stat)
			w.F64(c.Test.DF)
			w.F64(c.Test.DF2)
			w.F64(c.Test.P)
			w.Str(c.Detail)
		}
	}
	w.Bool(rep.CacheHit)
	w.Bool(rep.ReportCacheHit)
	return w.B
}

// DecodeReport parses a wire-format report, accepting both the version-1
// exact layout and the version-2 partial-report frame. It rejects bad
// magic, unknown versions, truncated or oversized payloads, and trailing
// garbage.
func DecodeReport(data []byte) (*Report, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%s: %d bytes is shorter than the header", decodingReport, len(data))
	}
	if data[0] != 'Z' || data[1] != 'G' || data[2] != 'R' {
		return nil, fmt.Errorf("%s: bad magic %q", decodingReport, data[:3])
	}
	version := data[3]
	if version != 1 && version != reportWireVersion {
		return nil, fmt.Errorf("%s: unsupported wire version %d (this build speaks 1 and %d)",
			decodingReport, version, reportWireVersion)
	}
	r := &wire.Reader{What: decodingReport, B: data, Off: len(reportMagic)}
	rep := &Report{}
	if version == reportWireVersion {
		rep.Approximate = &Approximate{
			SampleRows:  int(r.I64()),
			CapRows:     int(r.I64()),
			Seed:        r.U64(),
			InsideRows:  int(r.I64()),
			OutsideRows: int(r.I64()),
			SEInflation: r.F64(),
		}
	}
	rep.SelectedRows = int(r.I64())
	rep.TotalRows = int(r.I64())
	rep.SampledRows = int(r.I64())
	rep.Timings = Timings{
		Preparation: time.Duration(r.I64()),
		Search:      time.Duration(r.I64()),
		Post:        time.Duration(r.I64()),
	}
	rep.Warnings = r.Strs()
	// A view is at least 8 fixed u64-sized fields; 8 bytes is a safe floor.
	nViews := r.Count(8)
	if nViews > 0 {
		rep.Views = make([]View, nViews)
	}
	for i := 0; i < nViews && r.Err == nil; i++ {
		v := &rep.Views[i]
		v.Columns = r.Strs()
		v.Score = r.F64()
		v.Tightness = r.F64()
		v.PValue = r.F64()
		v.Significant = r.Bool()
		v.Explanation = r.Str()
		nComps := r.Count(8)
		if nComps > 0 {
			v.Components = make([]effect.Component, nComps)
		}
		for j := 0; j < nComps && r.Err == nil; j++ {
			c := &v.Components[j]
			c.Kind = effect.Kind(r.I64())
			c.Columns = r.Strs()
			c.Raw = r.F64()
			c.Norm = r.F64()
			c.Inside = r.F64()
			c.Outside = r.F64()
			c.Test = hypo.Result{Stat: r.F64(), DF: r.F64(), DF2: r.F64(), P: r.F64()}
			c.Detail = r.Str()
		}
	}
	rep.CacheHit = r.Bool()
	rep.ReportCacheHit = r.Bool()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return rep, nil
}
