package core

import (
	"time"

	"repro/internal/effect"
	"repro/internal/hypo"
	"repro/internal/wire"
)

// This file is the report wire codec: a versioned binary serialization of
// core.Report for the multi-process serving layer (internal/remote). It is
// built on the shared primitives of internal/wire, and the contract is
// strong: DecodeReport(EncodeReport(r)) reproduces r exactly, including NaN
// p-values and NaN payload bits that JSON cannot carry, so a report served
// by a remote worker is byte-identical (re-encoded) to one computed in
// process. TestRemoteDeterminism and the ziggyd golden suite lean on this.
//
// Layout (version 1), after the 4-byte magic "ZGR\x01":
//
//	report  := selectedRows totalRows sampledRows timings warnings views flags
//	timings := prepNanos searchNanos postNanos          (3 × u64)
//	warnings:= count {string}*
//	views   := count {view}*
//	view    := columns score tightness pValue significant explanation comps
//	comps   := count {comp}*
//	comp    := kind columns raw norm inside outside stat df df2 p detail
//
// Decoding is strict: bad magic, an unknown version, truncation, oversized
// counts and trailing bytes are all errors, never a partially decoded
// report.

// reportWireVersion is bumped whenever the layout changes; a decoder only
// accepts payloads whose version it was built for.
const reportWireVersion = 1

// reportMagic prefixes every encoded report: three fixed bytes plus the
// version.
var reportMagic = [4]byte{'Z', 'G', 'R', reportWireVersion}

const decodingReport = "core: decoding report"

// EncodeReport serializes a report in the versioned wire format. The
// encoding is canonical: equal reports encode to equal bytes, so encoded
// reports can be byte-compared (the determinism suites do).
func EncodeReport(rep *Report) []byte {
	var w wire.Buf
	w.B = append(w.B, reportMagic[:]...)
	w.I64(int64(rep.SelectedRows))
	w.I64(int64(rep.TotalRows))
	w.I64(int64(rep.SampledRows))
	w.I64(int64(rep.Timings.Preparation))
	w.I64(int64(rep.Timings.Search))
	w.I64(int64(rep.Timings.Post))
	w.Strs(rep.Warnings)
	w.U64(uint64(len(rep.Views)))
	for i := range rep.Views {
		v := &rep.Views[i]
		w.Strs(v.Columns)
		w.F64(v.Score)
		w.F64(v.Tightness)
		w.F64(v.PValue)
		w.Bool(v.Significant)
		w.Str(v.Explanation)
		w.U64(uint64(len(v.Components)))
		for _, c := range v.Components {
			w.I64(int64(c.Kind))
			w.Strs(c.Columns)
			w.F64(c.Raw)
			w.F64(c.Norm)
			w.F64(c.Inside)
			w.F64(c.Outside)
			w.F64(c.Test.Stat)
			w.F64(c.Test.DF)
			w.F64(c.Test.DF2)
			w.F64(c.Test.P)
			w.Str(c.Detail)
		}
	}
	w.Bool(rep.CacheHit)
	w.Bool(rep.ReportCacheHit)
	return w.B
}

// DecodeReport parses a wire-format report. It rejects bad magic, unknown
// versions, truncated or oversized payloads, and trailing garbage.
func DecodeReport(data []byte) (*Report, error) {
	if err := wire.CheckMagic(data, reportMagic, decodingReport); err != nil {
		return nil, err
	}
	r := &wire.Reader{What: decodingReport, B: data, Off: len(reportMagic)}
	rep := &Report{
		SelectedRows: int(r.I64()),
		TotalRows:    int(r.I64()),
		SampledRows:  int(r.I64()),
	}
	rep.Timings = Timings{
		Preparation: time.Duration(r.I64()),
		Search:      time.Duration(r.I64()),
		Post:        time.Duration(r.I64()),
	}
	rep.Warnings = r.Strs()
	// A view is at least 8 fixed u64-sized fields; 8 bytes is a safe floor.
	nViews := r.Count(8)
	if nViews > 0 {
		rep.Views = make([]View, nViews)
	}
	for i := 0; i < nViews && r.Err == nil; i++ {
		v := &rep.Views[i]
		v.Columns = r.Strs()
		v.Score = r.F64()
		v.Tightness = r.F64()
		v.PValue = r.F64()
		v.Significant = r.Bool()
		v.Explanation = r.Str()
		nComps := r.Count(8)
		if nComps > 0 {
			v.Components = make([]effect.Component, nComps)
		}
		for j := 0; j < nComps && r.Err == nil; j++ {
			c := &v.Components[j]
			c.Kind = effect.Kind(r.I64())
			c.Columns = r.Strs()
			c.Raw = r.F64()
			c.Norm = r.F64()
			c.Inside = r.F64()
			c.Outside = r.F64()
			c.Test = hypo.Result{Stat: r.F64(), DF: r.F64(), DF2: r.F64(), P: r.F64()}
			c.Detail = r.Str()
		}
	}
	rep.CacheHit = r.Bool()
	rep.ReportCacheHit = r.Bool()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return rep, nil
}
