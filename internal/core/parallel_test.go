package core

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/frame"
	"repro/internal/synth"
)

// bits renders a float64 exactly, so fingerprint comparisons are
// bit-for-bit rather than print-precision approximate.
func fbits(x float64) string { return strconv.FormatUint(math.Float64bits(x), 16) }

// fingerprint serializes everything observable about a report except the
// wall-clock timings and the cache-hit flag.
func fingerprint(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sel=%d total=%d sampled=%d warnings=%q\n",
		rep.SelectedRows, rep.TotalRows, rep.SampledRows, rep.Warnings)
	for _, v := range rep.Views {
		fmt.Fprintf(&b, "view %v score=%s tight=%s p=%s sig=%t expl=%q\n",
			v.Columns, fbits(v.Score), fbits(v.Tightness), fbits(v.PValue), v.Significant, v.Explanation)
		for _, c := range v.Components {
			fmt.Fprintf(&b, "  comp %v %v raw=%s norm=%s in=%s out=%s stat=%s df=%s p=%s detail=%q\n",
				c.Kind, c.Columns, fbits(c.Raw), fbits(c.Norm), fbits(c.Inside), fbits(c.Outside),
				fbits(c.Test.Stat), fbits(c.Test.DF), fbits(c.Test.P), c.Detail)
		}
	}
	return b.String()
}

// crimeFixture builds the paper's running example: the US-crime table with
// the high-violent-crime selection.
func crimeFixture(t *testing.T) (*frame.Frame, *frame.Bitmap, Options) {
	t.Helper()
	f := synth.USCrime(42)
	const col = "crime_violent_rate"
	threshold, err := synth.QuantileOf(f, col, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := f.Lookup(col)
	if !ok {
		t.Fatalf("missing column %q", col)
	}
	sel := frame.NewBitmap(f.NumRows())
	for i := 0; i < f.NumRows(); i++ {
		if !c.IsNull(i) && c.Float(i) >= threshold {
			sel.Set(i)
		}
	}
	return f, sel, Options{ExcludeColumns: []string{col}}
}

// TestParallelDeterminism asserts the engine's full observable output —
// view order, scores, p-values, components, explanations, warnings — is
// byte-identical for Parallelism 1 (the sequential path), 2, 3, and
// NumCPU, on both the synthetic planted workload and the US-crime fixture,
// cold and warm.
func TestParallelDeterminism(t *testing.T) {
	type fixture struct {
		name string
		cfg  func() Config
		data func(t *testing.T) (*frame.Frame, *frame.Bitmap, Options)
	}
	planted := func(seed uint64) func(t *testing.T) (*frame.Frame, *frame.Bitmap, Options) {
		return func(t *testing.T) (*frame.Frame, *frame.Bitmap, Options) {
			pd := plantedFixture(t, seed)
			return pd.Frame, pd.Selection, Options{}
		}
	}
	fixtures := []fixture{
		{name: "planted-default", cfg: DefaultConfig, data: planted(90)},
		{name: "planted-robust-extended", cfg: func() Config {
			cfg := DefaultConfig()
			cfg.Robust = true
			cfg.Extended = true
			return cfg
		}, data: planted(91)},
		{name: "planted-sampled", cfg: func() Config {
			cfg := DefaultConfig()
			cfg.SampleRows = 500
			return cfg
		}, data: planted(92)},
		{name: "uscrime", cfg: DefaultConfig, data: crimeFixture},
	}

	workerCounts := []int{1, 2, 3, runtime.NumCPU()}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			f, sel, opts := fx.data(t)
			var wantCold, wantWarm string
			for _, p := range workerCounts {
				cfg := fx.cfg()
				cfg.Parallelism = p
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := e.CharacterizeOpts(f, sel, opts)
				if err != nil {
					t.Fatal(err)
				}
				warm, err := e.CharacterizeOpts(f, sel, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !warm.CacheHit {
					t.Fatalf("parallelism=%d: second run missed the cache", p)
				}
				fpCold, fpWarm := fingerprint(cold), fingerprint(warm)
				if p == 1 {
					wantCold, wantWarm = fpCold, fpWarm
					if len(cold.Views) == 0 {
						t.Fatal("reference run found no views")
					}
					continue
				}
				if fpCold != wantCold {
					t.Errorf("parallelism=%d: cold output differs from sequential\nwant:\n%s\ngot:\n%s", p, wantCold, fpCold)
				}
				if fpWarm != wantWarm {
					t.Errorf("parallelism=%d: warm output differs from sequential\nwant:\n%s\ngot:\n%s", p, wantWarm, fpWarm)
				}
			}
		})
	}
}

// TestParallelismValidation pins the knob's validation contract: negatives
// are rejected, 0 (all CPUs) and explicit counts are accepted.
func TestParallelismValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("Parallelism=-1 validated")
	}
	for _, p := range []int{0, 1, 64} {
		cfg.Parallelism = p
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Parallelism=%d rejected: %v", p, err)
		}
	}
}
