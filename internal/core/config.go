// Package core implements the Ziggy query-characterization engine: given a
// table and a selection over its rows (a query result), it finds the
// characteristic views — small, coherent, mutually disjoint sets of columns
// on which the selected tuples differ most from the rest of the data — and
// explains each view in plain language.
//
// The pipeline follows paper Figure 4:
//
//	Preparation      — split every column into Cᴵ/Cᴼ, compute per-column
//	                   Zig-Components, build the column dependency matrix
//	                   (cached across queries on the same table).
//	View search      — generate tight candidate views by partitioning the
//	                   dependency graph (complete-linkage clustering by
//	                   default, maximal cliques as the alternative), score
//	                   them with the Zig-Dissimilarity, and rank them
//	                   greedily under the disjointness constraint.
//	Post-processing  — test each component's significance, aggregate
//	                   p-values into per-view confidence, and generate the
//	                   textual explanations.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/depend"
	"repro/internal/effect"
	"repro/internal/hypo"
)

// CandidateGen selects the view-search candidate generator.
type CandidateGen int

const (
	// Clustering partitions the dependency graph with hierarchical
	// clustering (the paper's implementation uses complete linkage).
	Clustering CandidateGen = iota
	// Cliques enumerates maximal cliques of the thresholded dependency
	// graph.
	Cliques
)

// String names the generator.
func (g CandidateGen) String() string {
	switch g {
	case Clustering:
		return "clustering"
	case Cliques:
		return "cliques"
	default:
		return fmt.Sprintf("CandidateGen(%d)", int(g))
	}
}

// Config parameterizes the engine. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	// MinTight is the tightness threshold MIN_tight of Equation 3: every
	// reported view has minimum pairwise column dependency ≥ MinTight.
	MinTight float64
	// MaxDim is D, the maximum number of columns per view (Equation 1's
	// "at most D columns"). Low values keep views plottable.
	MaxDim int
	// MaxViews caps the number of reported views.
	MaxViews int
	// Weights are the user's Zig-Component preferences.
	Weights effect.Weights
	// Measure is the dependency statistic S of Equation 2.
	Measure depend.Measure
	// Linkage picks the clustering flavor (complete in the paper).
	Linkage cluster.Linkage
	// Generator picks clustering or clique candidate generation.
	Generator CandidateGen
	// Alpha is the significance level for the post-processing stage.
	Alpha float64
	// Aggregation combines per-component p-values into view confidence.
	Aggregation hypo.Aggregation
	// Robust switches the location component from Hedges' g / Welch to
	// Cliff's delta / Mann-Whitney.
	Robust bool
	// RequireSignificant drops views whose aggregated p-value does not
	// clear Alpha ("validating views", paper §3).
	RequireSignificant bool
	// MinRows is the minimum number of usable rows required on each side
	// of the split before a column participates at all.
	MinRows int
	// MaxCliques bounds clique enumeration when Generator == Cliques.
	MaxCliques int
	// Extended enables the extended Zig-Component families from the
	// companion research paper: quantile shifts, tail-weight changes,
	// categorical entropy changes, and mixed categorical-numeric
	// separation changes. Weights for them default to 1 when absent.
	Extended bool
	// SampleRows, when positive, caps the number of rows used by the
	// preparation stage: both sides of the split are subsampled
	// proportionally (BlinkDB-style approximation; experiment X7 measures
	// the accuracy cost). Zero disables sampling.
	SampleRows int
	// Parallelism is the worker count for the engine's parallel stages
	// (column splitting, the pairwise dependency matrix, candidate
	// scoring). Zero means all CPUs (runtime.GOMAXPROCS); 1 runs the
	// sequential path with no goroutines. Results are bit-for-bit
	// identical for every worker count.
	Parallelism int
	// Shards is the number of independent engine shards the serving layer
	// (internal/shard, ziggy.Session, ziggyd -shards) runs behind its
	// router; each loaded table is assigned to one shard by content
	// fingerprint. Zero means all CPUs (runtime.GOMAXPROCS). The engine
	// itself ignores the field — it parameterizes the router — and like
	// Parallelism it never affects report bytes (TestShardedDeterminism),
	// so it is excluded from the report-cache key.
	Shards int
	// CacheEntries bounds each memo tier (prepared structures and full
	// reports) to this many LRU entries. Zero means DefaultCacheEntries;
	// negative is invalid.
	CacheEntries int
	// CacheBytes bounds each memo tier to approximately this many resident
	// bytes. Zero means DefaultCacheBytes; negative is invalid.
	CacheBytes int64
	// ApproxRows is the sample cap the serving layer applies when it
	// answers approximately (Options.ApproxRows on degraded requests,
	// ziggyd -approx-cap). Zero means DefaultApproxRows. Like Parallelism
	// and Shards the engine itself never reads it — callers resolve it via
	// EffectiveApproxRows and pass the concrete cap through Options — so
	// it is excluded from the report-cache key.
	ApproxRows int
	// ApproxUnderPressure makes a saturated shard serve a deterministic
	// sample-based approximate report (flagged Report.Approximate) instead
	// of shedding with ErrSaturated. Serving-layer-only, like Shards.
	ApproxUnderPressure bool
}

// Default memo-tier bounds applied when Config leaves them zero. Each of
// the two tiers gets its own budget.
const (
	DefaultCacheEntries = 128
	DefaultCacheBytes   = 256 << 20 // 256 MiB
)

// DefaultApproxRows is the sample cap applied when approximate serving is
// requested without an explicit cap (Config.ApproxRows == 0).
const DefaultApproxRows = 512

// EffectiveApproxRows resolves the zero-means-default approximate sample
// cap, mirroring EffectiveCacheBounds: the single place that maps 0 to
// DefaultApproxRows for every serving edge (HTTP handler, degraded
// admission, load targets).
func (c Config) EffectiveApproxRows() int {
	if c.ApproxRows == 0 {
		return DefaultApproxRows
	}
	return c.ApproxRows
}

// EffectiveCacheBounds resolves the zero-means-default cache bounds: the
// single place (shared by the engine, the report cache, and the shard
// router's per-shard budget split) that maps 0 to DefaultCacheEntries /
// DefaultCacheBytes.
func (c Config) EffectiveCacheBounds() (entries int, bytes int64) {
	entries, bytes = c.CacheEntries, c.CacheBytes
	if entries == 0 {
		entries = DefaultCacheEntries
	}
	if bytes == 0 {
		bytes = DefaultCacheBytes
	}
	return entries, bytes
}

// DefaultConfig returns the configuration used throughout the paper's demo
// scenarios: two-column views, moderate tightness, complete linkage, the
// minimum rule for confidence.
func DefaultConfig() Config {
	return Config{
		MinTight:           0.4,
		MaxDim:             2,
		MaxViews:           8,
		Weights:            effect.DefaultWeights(),
		Measure:            depend.AbsPearson,
		Linkage:            cluster.Complete,
		Generator:          Clustering,
		Alpha:              0.05,
		Aggregation:        hypo.MinP,
		MinRows:            5,
		MaxCliques:         10000,
		RequireSignificant: false,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MinTight < 0 || c.MinTight > 1 {
		return fmt.Errorf("core: MinTight %v outside [0,1]", c.MinTight)
	}
	if c.MaxDim < 1 {
		return fmt.Errorf("core: MaxDim %d < 1", c.MaxDim)
	}
	if c.MaxViews < 1 {
		return fmt.Errorf("core: MaxViews %d < 1", c.MaxViews)
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("core: Alpha %v outside (0,1)", c.Alpha)
	}
	if c.MinRows < 2 {
		return fmt.Errorf("core: MinRows %d < 2", c.MinRows)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: Parallelism %d < 0 (0 means all CPUs)", c.Parallelism)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: Shards %d < 0 (0 means all CPUs)", c.Shards)
	}
	if c.CacheEntries < 0 {
		return fmt.Errorf("core: CacheEntries %d < 0 (0 means the default)", c.CacheEntries)
	}
	if c.CacheBytes < 0 {
		return fmt.Errorf("core: CacheBytes %d < 0 (0 means the default)", c.CacheBytes)
	}
	if c.ApproxRows < 0 {
		return fmt.Errorf("core: ApproxRows %d < 0 (0 means the default)", c.ApproxRows)
	}
	if err := c.Weights.Validate(); err != nil {
		return err
	}
	return nil
}
