package core

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/depend"
	"repro/internal/effect"
	"repro/internal/memo"
)

// This file wires the engine to the content-addressed memoization substrate
// (internal/memo). Two tiers serve the hot path:
//
//   - the prepared-cache keys the query-independent preparation products
//     (dependency matrix + dendrogram) by (frame fingerprint, measure,
//     linkage), replacing the old unbounded pointer-keyed map;
//   - the report-cache memoizes entire characterization reports by (frame
//     fingerprint, selection fingerprint, config hash, options hash), so a
//     repeated identical query is a lookup and concurrent identical queries
//     compute once (singleflight).
//
// Both tiers are LRU-bounded by Config.CacheEntries / CacheBytes.

// prepKey addresses one table's preparation products. The measure and
// linkage are part of the key rather than assumed constant so a future
// shared (cross-engine) cache cannot mix configurations.
type prepKey struct {
	frame   uint64
	measure depend.Measure
	linkage cluster.Linkage
}

// reportKey addresses one full characterization.
type reportKey struct {
	frame, sel, cfg, opts uint64
}

// hashConfig folds every output-affecting Config field into a key
// component. Parallelism and Shards are deliberately excluded: reports are
// bit-for-bit identical for every worker count (TestParallelDeterminism) and
// every shard count (TestShardedDeterminism), so a cached report is valid
// regardless of how many workers or shards would have recomputed it — and a
// shared cache serves routers of different shard counts interchangeably.
func hashConfig(c Config) uint64 {
	h := memo.NewHasher()
	h.Float(c.MinTight)
	h.Int(c.MaxDim)
	h.Int(c.MaxViews)
	kinds := make([]int, 0, len(c.Weights))
	for k := range c.Weights {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	h.Int(len(kinds))
	for _, k := range kinds {
		h.Int(k)
		h.Float(c.Weights[effect.Kind(k)])
	}
	h.Int(int(c.Measure))
	h.Int(int(c.Linkage))
	h.Int(int(c.Generator))
	h.Float(c.Alpha)
	h.Int(int(c.Aggregation))
	h.Bool(c.Robust)
	h.Bool(c.RequireSignificant)
	h.Int(c.MinRows)
	h.Int(c.MaxCliques)
	h.Bool(c.Extended)
	h.Int(c.SampleRows)
	return h.Sum()
}

// hashOptions folds the per-run options into a key component. The exclusion
// list is hashed in order because warnings about unknown excluded columns
// are emitted in list order, and cached reports must be byte-identical to
// uncached ones. ApproxRows and ApproxSeed are part of the key — an
// approximate report memoizes separately from the exact one, and from
// approximate reports under any other (cap, seed) — so a degraded answer
// can never masquerade as the full-precision one on a repeat, and the
// follow-up exact request refines through its own (cold) key.
func hashOptions(o Options) uint64 {
	h := memo.NewHasher()
	h.Int(len(o.ExcludeColumns))
	for _, c := range o.ExcludeColumns {
		h.String(c)
	}
	h.Int(o.ApproxRows)
	h.Uint64(o.ApproxSeed)
	return h.Sum()
}

// preparedSize estimates the resident bytes of one prepared entry: the n×n
// dependency matrix dominates, plus the distance copy and dendrogram nodes
// (O(n) each).
func preparedSize(p *prepared) int64 {
	if p == nil || p.dep == nil {
		return 128
	}
	n := int64(p.dep.Len())
	return 128 + n*n*8 + n*96
}

// reportSize estimates the resident bytes of one cached report by walking
// its views, components and strings.
func reportSize(r *Report) int64 {
	size := int64(256)
	for i := range r.Views {
		v := &r.Views[i]
		size += 160 + int64(len(v.Explanation))
		for _, c := range v.Columns {
			size += int64(len(c)) + 16
		}
		for _, comp := range v.Components {
			size += 128 + int64(len(comp.Detail))
			for _, c := range comp.Columns {
				size += int64(len(c)) + 16
			}
		}
	}
	for _, w := range r.Warnings {
		size += int64(len(w)) + 16
	}
	return size
}

// ReportCache is the content-addressed report memo: full characterization
// reports keyed by (frame fingerprint, selection fingerprint, config hash,
// options hash). Because every key component is derived from content — never
// from object identity or from which engine computes the value — one
// ReportCache is safe to share across engines: the shard router
// (internal/shard) runs one ReportCache behind all of its shards, and
// sessions sharing one (ziggy.NewSessionShared) serve each other's repeat
// queries. The wrapper keeps the key type private so callers cannot insert
// entries that bypass the engine's hashing discipline.
type ReportCache struct {
	c *memo.Cache[reportKey, *Report]
}

// NewReportCache builds a report cache bounded to entries LRU entries and
// approximately bytes resident bytes. Zero applies the engine defaults
// (DefaultCacheEntries / DefaultCacheBytes); negative bounds are invalid at
// the Config layer and treated as unbounded here.
func NewReportCache(entries int, bytes int64) *ReportCache {
	entries, bytes = Config{CacheEntries: entries, CacheBytes: bytes}.EffectiveCacheBounds()
	return &ReportCache{c: memo.New[reportKey, *Report](entries, bytes)}
}

// Snapshot returns the cache's counters and occupancy.
func (rc *ReportCache) Snapshot() memo.Snapshot { return rc.c.Snapshot() }

// Purge drops every cached report; in-flight computations are unaffected.
func (rc *ReportCache) Purge() { rc.c.Purge() }

// InvalidateFrame drops every cached report computed over the frame with
// the given content fingerprint — all selections, configs, and options —
// and returns how many entries it dropped. Entries for other frames are
// untouched, so unregistering or appending to one table never costs another
// table its cached repeats, even on a cache shared across shards and
// sessions.
func (rc *ReportCache) InvalidateFrame(fp uint64) int {
	return rc.c.RemoveIf(func(k reportKey) bool { return k.frame == fp })
}

// Len returns the number of cached reports.
func (rc *ReportCache) Len() int { return rc.c.Len() }

// CacheStats is a point-in-time view of the engine's two memo tiers; the
// server's /api/stats endpoint serializes it directly. Within each tier,
// Hits + Misses equals the number of requests and Misses - Deduped the
// number of computations actually executed.
type CacheStats struct {
	// Prepared covers the query-independent preparation products.
	Prepared memo.Snapshot `json:"prepared"`
	// Reports covers full memoized characterization reports.
	Reports memo.Snapshot `json:"reports"`
}

// CacheStats returns the engine's cache counters and occupancy. When the
// engine shares its report cache (NewShared), the Reports tier reflects the
// shared cache, i.e. traffic from every engine attached to it.
func (e *Engine) CacheStats() CacheStats {
	return CacheStats{Prepared: e.prep.Snapshot(), Reports: e.reports.Snapshot()}
}

// AddSnapshots sums two snapshots' counters and occupancy; the shard router
// uses it to aggregate the per-shard prepared tiers into one view.
func AddSnapshots(a, b memo.Snapshot) memo.Snapshot {
	return memo.Snapshot{
		Hits:      a.Hits + b.Hits,
		Misses:    a.Misses + b.Misses,
		Evictions: a.Evictions + b.Evictions,
		Deduped:   a.Deduped + b.Deduped,
		Inflight:  a.Inflight + b.Inflight,
		Entries:   a.Entries + b.Entries,
		Bytes:     a.Bytes + b.Bytes,
	}
}
