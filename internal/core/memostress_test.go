package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/frame"
	"repro/internal/synth"
)

// stressTable builds one small planted table for the memo stress suites;
// small enough that -race runs stay quick, structured enough that every
// characterization finds at least one view.
func stressTable(t *testing.T, seed uint64) (*frame.Frame, *frame.Bitmap) {
	t.Helper()
	pd, err := synth.Planted(synth.PlantedConfig{
		Seed: seed, Rows: 600, SelectionFraction: 0.3,
		Views:     []synth.PlantedView{{Cols: 2, WithinCorr: 0.75, MeanShift: 1.6}},
		NoiseCols: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pd.Frame, pd.Selection
}

// referenceFingerprints characterizes each table on a throwaway engine with
// the report cache bypassed, yielding the ground-truth output every cached,
// deduplicated or post-eviction run must reproduce byte for byte.
func referenceFingerprints(t *testing.T, cfg Config, frames []*frame.Frame, sels []*frame.Bitmap) []string {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]string, len(frames))
	for i := range frames {
		rep, err := e.CharacterizeOpts(frames[i], sels[i], Options{SkipReportCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Views) == 0 {
			t.Fatalf("table %d: reference run found no views", i)
		}
		refs[i] = fingerprint(rep)
	}
	return refs
}

// TestMemoRaceStress hammers one shared engine from N goroutines × M
// tables under the race detector and then audits the memo counters: every
// report must be byte-identical to the uncached reference, and the
// singleflight discipline means each distinct key was computed exactly once
// — misses - deduped == M — no matter how the goroutines interleaved
// (requests that found a computation in flight joined it; requests that
// arrived later hit the cache).
func TestMemoRaceStress(t *testing.T) {
	const goroutines = 8
	const tables = 3
	const rounds = 3

	frames := make([]*frame.Frame, tables)
	sels := make([]*frame.Bitmap, tables)
	for i := range frames {
		frames[i], sels[i] = stressTable(t, uint64(400+i))
	}
	cfg := DefaultConfig()
	cfg.Parallelism = 2 // engine-internal fan-out layered under the goroutines
	refs := referenceFingerprints(t, cfg, frames, sels)

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start // maximize concurrent first requests per table
			for round := 0; round < rounds; round++ {
				for m := 0; m < tables; m++ {
					rep, err := e.Characterize(frames[m], sels[m])
					if err != nil {
						errs <- err
						return
					}
					if got := fingerprint(rep); got != refs[m] {
						errs <- fmt.Errorf("goroutine %d round %d table %d: cached output differs from uncached reference", g, round, m)
						return
					}
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	stats := e.CacheStats()
	wantRequests := int64(goroutines * tables * rounds)
	if got := stats.Reports.Requests(); got != wantRequests {
		t.Errorf("report tier saw %d requests, want %d", got, wantRequests)
	}
	if stats.Reports.Hits+stats.Reports.Misses != stats.Reports.Requests() {
		t.Errorf("report counters do not reconcile: %+v", stats.Reports)
	}
	// The dedupe audit: every miss either computed or joined an in-flight
	// computation, so computations = misses - deduped, and each of the
	// `tables` distinct keys must have been computed exactly once.
	if got := stats.Reports.Misses - stats.Reports.Deduped; got != tables {
		t.Errorf("%d report computations for %d distinct keys (misses=%d deduped=%d); singleflight dedupe broken",
			got, tables, stats.Reports.Misses, stats.Reports.Deduped)
	}
	// Preparation requests happen only inside report computations: one per
	// distinct table.
	if got := stats.Prepared.Requests(); got != tables {
		t.Errorf("prepared tier saw %d requests, want %d", got, tables)
	}
	if got := stats.Prepared.Misses - stats.Prepared.Deduped; got != tables {
		t.Errorf("%d prepared computations for %d tables: %+v", got, tables, stats.Prepared)
	}
	if stats.Reports.Inflight != 0 || stats.Prepared.Inflight != 0 {
		t.Errorf("inflight gauges nonzero after quiescence: %+v", stats)
	}
	if stats.Reports.Entries != tables {
		t.Errorf("report cache holds %d entries, want %d", stats.Reports.Entries, tables)
	}
}

// TestMemoEvictionStress cycles more distinct tables than the configured
// entry bound through a shared engine from several goroutines: entries are
// continuously evicted and recomputed, results must stay byte-identical to
// the uncached references throughout, and the counters must still
// reconcile exactly.
func TestMemoEvictionStress(t *testing.T) {
	const goroutines = 4
	const tables = 5
	const bound = 2
	const rounds = 3

	frames := make([]*frame.Frame, tables)
	sels := make([]*frame.Bitmap, tables)
	for i := range frames {
		frames[i], sels[i] = stressTable(t, uint64(500+i))
	}
	cfg := DefaultConfig()
	cfg.CacheEntries = bound
	refs := referenceFingerprints(t, cfg, frames, sels)

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				// Walk the tables in a goroutine-specific rotation so hits,
				// misses and evictions interleave differently per goroutine.
				for i := 0; i < tables; i++ {
					m := (i + g) % tables
					rep, err := e.Characterize(frames[m], sels[m])
					if err != nil {
						errs <- err
						return
					}
					if got := fingerprint(rep); got != refs[m] {
						errs <- fmt.Errorf("goroutine %d round %d table %d: output corrupted under eviction churn", g, round, m)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	stats := e.CacheStats()
	wantRequests := int64(goroutines * tables * rounds)
	if got := stats.Reports.Requests(); got != wantRequests {
		t.Errorf("report tier saw %d requests, want %d", got, wantRequests)
	}
	if stats.Reports.Hits+stats.Reports.Misses != stats.Reports.Requests() {
		t.Errorf("report counters do not reconcile: %+v", stats.Reports)
	}
	if stats.Prepared.Hits+stats.Prepared.Misses != stats.Prepared.Requests() {
		t.Errorf("prepared counters do not reconcile: %+v", stats.Prepared)
	}
	// Cycling 5 distinct tables through a 2-entry LRU must evict.
	if stats.Reports.Evictions == 0 {
		t.Error("no report-cache evictions despite cycling more tables than the bound")
	}
	if stats.Prepared.Evictions == 0 {
		t.Error("no prepared-cache evictions despite cycling more tables than the bound")
	}
	if stats.Reports.Entries > bound {
		t.Errorf("report cache holds %d entries, bound is %d", stats.Reports.Entries, bound)
	}
	if stats.Prepared.Entries > bound {
		t.Errorf("prepared cache holds %d entries, bound is %d", stats.Prepared.Entries, bound)
	}
}

// TestReportCacheByteIdentical asserts, for the default, robust and
// extended configurations, that a report served from the report cache is
// byte-identical to the uncached pipeline output — the acceptance bar for
// memoizing the serving hot path — and that SkipReportCache really
// bypasses the tier.
func TestReportCacheByteIdentical(t *testing.T) {
	f, sel := stressTable(t, 600)
	cfgs := map[string]func() Config{
		"default": DefaultConfig,
		"robust": func() Config {
			c := DefaultConfig()
			c.Robust = true
			return c
		},
		"robust-extended": func() Config {
			c := DefaultConfig()
			c.Robust = true
			c.Extended = true
			return c
		},
	}
	for name, mk := range cfgs {
		t.Run(name, func(t *testing.T) {
			e, err := New(mk())
			if err != nil {
				t.Fatal(err)
			}
			cold, err := e.Characterize(f, sel)
			if err != nil {
				t.Fatal(err)
			}
			if cold.ReportCacheHit {
				t.Fatal("cold run flagged as report-cache hit")
			}
			cached, err := e.Characterize(f, sel)
			if err != nil {
				t.Fatal(err)
			}
			if !cached.ReportCacheHit || !cached.CacheHit {
				t.Fatalf("repeat run not served from the report cache: %+v", cached)
			}
			if cached.Timings.Total() != 0 {
				t.Error("cached report carries stage timings")
			}
			uncached, err := e.CharacterizeOpts(f, sel, Options{SkipReportCache: true})
			if err != nil {
				t.Fatal(err)
			}
			if uncached.ReportCacheHit {
				t.Error("SkipReportCache run flagged as report-cache hit")
			}
			want := fingerprint(cold)
			if got := fingerprint(cached); got != want {
				t.Errorf("cached report differs from cold run\nwant:\n%s\ngot:\n%s", want, got)
			}
			if got := fingerprint(uncached); got != want {
				t.Errorf("uncached repeat differs from cold run\nwant:\n%s\ngot:\n%s", want, got)
			}
		})
	}
}

// TestReportCacheContentAddressed asserts the fingerprint keying: an
// independently rebuilt identical table hits the report cache (the old
// pointer-keyed cache missed here), while any content difference misses.
func TestReportCacheContentAddressed(t *testing.T) {
	build := func(seed uint64) (*frame.Frame, *frame.Bitmap) { return stressTable(t, seed) }
	f1, s1 := build(700)
	f2, s2 := build(700) // identical content, distinct objects
	f3, s3 := build(701) // different content

	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Characterize(f1, s1); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Characterize(f2, s2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ReportCacheHit {
		t.Error("reloaded identical table missed the report cache")
	}
	rep, err = e.Characterize(f3, s3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReportCacheHit {
		t.Error("different table content hit the report cache")
	}
	// Different options under the same table must also miss.
	rep, err = e.CharacterizeOpts(f1, s1, Options{ExcludeColumns: []string{"noise0"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReportCacheHit {
		t.Error("different options hit the report cache")
	}
}
