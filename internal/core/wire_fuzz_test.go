package core

import (
	"bytes"
	"testing"
)

// FuzzReportCodec fuzzes the report wire format from the decode side: any
// byte string either fails to decode or decodes to a report whose
// re-encoding is stable — decode(encode(decode(data))) reproduces the same
// bytes. Combined with the canonical-encoding property this is the full
// decode∘encode round-trip: every decodable payload IS encode of its decoded
// report. The seed corpus covers the empty report, the kitchen-sink fixture
// (NaN/Inf floats, non-ASCII strings) and a real engine output shape.
func FuzzReportCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeReport(&Report{}))
	f.Add(EncodeReport(wireFixture()))
	f.Add(EncodeReport(approxWireFixture()))
	f.Add(EncodeReport(&Report{Approximate: &Approximate{SampleRows: 1, SEInflation: 1}}))
	// Mild corruptions of a valid payload steer the fuzzer toward deep
	// field boundaries instead of dying on the magic check.
	full := EncodeReport(wireFixture())
	f.Add(full[:len(full)-1])
	truncated := append([]byte(nil), full[:40]...)
	f.Add(truncated)
	// Version-2 seeds: a truncation inside the approx block and a header
	// swapped onto the version-1 body steer the fuzzer at the frame switch.
	approx := EncodeReport(approxWireFixture())
	f.Add(approx[:len(approx)-1])
	f.Add(append([]byte(nil), approx[:20]...))
	f.Add(append([]byte("ZGR\x02"), full[4:]...))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReport(data)
		if err != nil {
			return
		}
		enc := EncodeReport(rep)
		if !bytes.Equal(enc, data) {
			t.Fatalf("decodable payload is not canonical: %d bytes in, %d bytes re-encoded", len(data), len(enc))
		}
		rep2, err := DecodeReport(enc)
		if err != nil {
			t.Fatalf("re-encoded report failed to decode: %v", err)
		}
		if !bytes.Equal(EncodeReport(rep2), enc) {
			t.Fatal("second round trip diverged")
		}
	})
}
