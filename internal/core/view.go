package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/effect"
)

// View is one characteristic view: a small set of columns on which the
// selection's distribution diverges from the rest of the data.
type View struct {
	// Columns names the view's columns in frame order.
	Columns []string
	// Score is the Zig-Dissimilarity (Equation 1 with the composite
	// measure of §2.2). Views are reported in decreasing score order.
	Score float64
	// Tightness is the minimum pairwise dependency of the view's columns
	// (Equation 2); always ≥ the configured MinTight.
	Tightness float64
	// Components lists the Zig-Components backing the score, strongest
	// first.
	Components []effect.Component
	// PValue is the aggregated confidence of the view under the configured
	// aggregation scheme; NaN when no component was testable.
	PValue float64
	// Significant reports whether PValue clears the configured Alpha.
	Significant bool
	// Explanation is the generated natural-language description.
	Explanation string
}

// String renders a one-line summary.
func (v View) String() string {
	return fmt.Sprintf("View{%s score=%.3f tight=%.2f p=%.3g}",
		strings.Join(v.Columns, ", "), v.Score, v.Tightness, v.PValue)
}

// Timings reports per-stage wall time of one characterization run
// (paper Figure 4's three stages).
type Timings struct {
	Preparation time.Duration
	Search      time.Duration
	Post        time.Duration
}

// Total sums the stages.
func (t Timings) Total() time.Duration { return t.Preparation + t.Search + t.Post }

// Report is the full outcome of Engine.Characterize.
type Report struct {
	// Views lists the characteristic views, best first, mutually disjoint
	// (Equation 4).
	Views []View
	// SelectedRows and TotalRows describe the split sizes.
	SelectedRows, TotalRows int
	// SampledRows is the number of rows the per-query statistics actually
	// consumed when Config.SampleRows capped them; 0 means no sampling.
	SampledRows int
	// Timings carries the stage breakdown.
	Timings Timings
	// Warnings lists non-fatal issues (skipped columns, tiny selections).
	Warnings []string
	// CacheHit reports whether the preparation-stage dependency structure
	// was reused from a previous (or concurrent) query on the same table.
	CacheHit bool
	// ReportCacheHit reports whether this entire report was served from
	// the report-level memo — a lookup, or a wait on a concurrent
	// identical computation — instead of running the pipeline. Such
	// reports are byte-identical to a fresh run except for the cache
	// flags and zeroed Timings.
	ReportCacheHit bool
}
