package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/effect"
)

// View is one characteristic view: a small set of columns on which the
// selection's distribution diverges from the rest of the data.
type View struct {
	// Columns names the view's columns in frame order.
	Columns []string
	// Score is the Zig-Dissimilarity (Equation 1 with the composite
	// measure of §2.2). Views are reported in decreasing score order.
	Score float64
	// Tightness is the minimum pairwise dependency of the view's columns
	// (Equation 2); always ≥ the configured MinTight.
	Tightness float64
	// Components lists the Zig-Components backing the score, strongest
	// first.
	Components []effect.Component
	// PValue is the aggregated confidence of the view under the configured
	// aggregation scheme; NaN when no component was testable.
	PValue float64
	// Significant reports whether PValue clears the configured Alpha.
	Significant bool
	// Explanation is the generated natural-language description.
	Explanation string
}

// String renders a one-line summary.
func (v View) String() string {
	return fmt.Sprintf("View{%s score=%.3f tight=%.2f p=%.3g}",
		strings.Join(v.Columns, ", "), v.Score, v.Tightness, v.PValue)
}

// Timings reports per-stage wall time of one characterization run
// (paper Figure 4's three stages).
type Timings struct {
	Preparation time.Duration
	Search      time.Duration
	Post        time.Duration
}

// Total sums the stages.
func (t Timings) Total() time.Duration { return t.Preparation + t.Search + t.Post }

// Approximate is the provenance block of a sample-based approximate
// report (Options.ApproxRows > 0): exactly which deterministic subset the
// pipeline ran on, and how much statistical resolution that cost. It is a
// pure function of (frame fingerprint, selection fingerprint, seed, cap),
// so two approximate reports with the same provenance are byte-identical
// no matter which shard, worker count, or topology served them.
type Approximate struct {
	// SampleRows is the number of rows the pipeline actually consumed
	// (InsideRows + OutsideRows). It equals min(CapRows, selection size)
	// up to the per-side MinRows floors.
	SampleRows int
	// CapRows is the requested sample cap (Options.ApproxRows).
	CapRows int
	// Seed is the caller-chosen sampling seed (Options.ApproxSeed); the
	// effective stratified-sampling seed also mixes in both content
	// fingerprints, so distinct (frame, selection) pairs never share a
	// sample stream.
	Seed uint64
	// InsideRows and OutsideRows are the per-stratum sample sizes: how
	// many selected and non-selected rows survived the proportional cut.
	InsideRows, OutsideRows int
	// SEInflation estimates how much wider the standard errors behind the
	// per-component hypothesis tests are versus the exact report:
	// sqrt(TotalRows / SampleRows), ≥ 1, 1 when nothing was cut. The
	// tests themselves already run on the sample (their p-values reflect
	// the reduced power); this annotation quantifies the resolution loss
	// for display.
	SEInflation float64
}

// Report is the full outcome of Engine.Characterize.
type Report struct {
	// Views lists the characteristic views, best first, mutually disjoint
	// (Equation 4).
	Views []View
	// SelectedRows and TotalRows describe the split sizes.
	SelectedRows, TotalRows int
	// SampledRows is the number of rows the per-query statistics actually
	// consumed when Config.SampleRows capped them; 0 means no sampling.
	SampledRows int
	// Approximate is non-nil exactly when the report was computed on a
	// deterministic sample (Options.ApproxRows > 0) — the flag an
	// explorer checks before trusting effect magnitudes, and the block
	// the serving layer sets when it degrades instead of shedding.
	Approximate *Approximate
	// Timings carries the stage breakdown.
	Timings Timings
	// Warnings lists non-fatal issues (skipped columns, tiny selections).
	Warnings []string
	// CacheHit reports whether the preparation-stage dependency structure
	// was reused from a previous (or concurrent) query on the same table.
	CacheHit bool
	// ReportCacheHit reports whether this entire report was served from
	// the report-level memo — a lookup, or a wait on a concurrent
	// identical computation — instead of running the pipeline. Such
	// reports are byte-identical to a fresh run except for the cache
	// flags and zeroed Timings.
	ReportCacheHit bool
}
