package core

import (
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/depend"
	"repro/internal/effect"
	"repro/internal/frame"
	"repro/internal/hypo"
	"repro/internal/synth"
)

// plantedFixture builds a dataset with two planted views and noise, plus
// its selection.
func plantedFixture(t *testing.T, seed uint64) *synth.PlantedData {
	t.Helper()
	pd, err := synth.Planted(synth.PlantedConfig{
		Seed: seed, Rows: 3000, SelectionFraction: 0.25,
		Views: []synth.PlantedView{
			{Cols: 2, WithinCorr: 0.75, MeanShift: 1.6},
			{Cols: 2, WithinCorr: 0.75, ScaleRatio: 3},
		},
		NoiseCols: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pd
}

func defaultEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.MinTight = -0.1 },
		func(c *Config) { c.MinTight = 1.1 },
		func(c *Config) { c.MaxDim = 0 },
		func(c *Config) { c.MaxViews = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1 },
		func(c *Config) { c.MinRows = 1 },
		func(c *Config) { c.Weights = effect.Weights{effect.DiffMeans: -1} },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCharacterizeInputValidation(t *testing.T) {
	e := defaultEngine(t)
	f := frame.MustNew("t", []*frame.Column{
		frame.NewNumericColumn("x", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}),
	})
	if _, err := e.Characterize(nil, frame.NewBitmap(10)); err == nil {
		t.Error("nil frame accepted")
	}
	if _, err := e.Characterize(f, nil); err == nil {
		t.Error("nil selection accepted")
	}
	if _, err := e.Characterize(f, frame.NewBitmap(5)); err == nil {
		t.Error("mismatched selection accepted")
	}
	// Too-small selection.
	tiny := frame.BitmapFromIndices(10, []int{0})
	if _, err := e.Characterize(f, tiny); err == nil {
		t.Error("1-row selection accepted")
	}
	full := frame.NewBitmap(10)
	full.SetAll()
	if _, err := e.Characterize(f, full); err == nil {
		t.Error("empty complement accepted")
	}
}

func TestRecoversPlantedViews(t *testing.T) {
	pd := plantedFixture(t, 1)
	e := defaultEngine(t)
	rep, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Views) == 0 {
		t.Fatal("no views found")
	}
	// The two planted views must be the top two results (in some order),
	// each recovered exactly.
	if len(rep.Views) < 2 {
		t.Fatalf("found %d views, want ≥ 2", len(rep.Views))
	}
	got := map[string]bool{}
	for _, v := range rep.Views[:2] {
		cols := append([]string{}, v.Columns...)
		sort.Strings(cols)
		got[strings.Join(cols, "+")] = true
	}
	for _, tv := range pd.TrueViews {
		cols := append([]string{}, tv...)
		sort.Strings(cols)
		if !got[strings.Join(cols, "+")] {
			t.Errorf("planted view %v not in top-2; got %v and %v",
				tv, rep.Views[0].Columns, rep.Views[1].Columns)
		}
	}
	// Noise columns must not appear in any view with competitive score.
	for _, v := range rep.Views[:2] {
		for _, c := range v.Columns {
			if strings.HasPrefix(c, "noise") {
				t.Errorf("noise column %q in top view", c)
			}
		}
	}
}

func TestViewInvariants(t *testing.T) {
	pd := plantedFixture(t, 2)
	cfg := DefaultConfig()
	cfg.MaxViews = 20
	cfg.MaxDim = 3
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	lastScore := math.Inf(1)
	for _, v := range rep.Views {
		// Equation 4: views are disjoint.
		for _, c := range v.Columns {
			if seen[c] {
				t.Errorf("column %q appears in two views", c)
			}
			seen[c] = true
		}
		// Equation 1: at most D columns.
		if len(v.Columns) == 0 || len(v.Columns) > cfg.MaxDim {
			t.Errorf("view size %d outside [1,%d]", len(v.Columns), cfg.MaxDim)
		}
		// Equation 3: tightness.
		if v.Tightness < cfg.MinTight-1e-9 {
			t.Errorf("view %v tightness %v < %v", v.Columns, v.Tightness, cfg.MinTight)
		}
		// Ranking is by decreasing score.
		if v.Score > lastScore+1e-9 {
			t.Errorf("views not sorted: %v after %v", v.Score, lastScore)
		}
		lastScore = v.Score
		// Every view carries an explanation.
		if v.Explanation == "" {
			t.Errorf("view %v lacks explanation", v.Columns)
		}
		if v.String() == "" {
			t.Error("View.String empty")
		}
	}
	if rep.SelectedRows+0 == 0 || rep.TotalRows != pd.Frame.NumRows() {
		t.Error("report row counts wrong")
	}
}

func TestMeanShiftViewDetected(t *testing.T) {
	pd := plantedFixture(t, 3)
	e := defaultEngine(t)
	rep, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	// Find the mean-shift view (view0) and check its dominant component.
	for _, v := range rep.Views {
		if len(v.Columns) == 2 && strings.HasPrefix(v.Columns[0], "view0") {
			if len(v.Components) == 0 {
				t.Fatal("no components")
			}
			top := v.Components[0]
			if top.Kind != effect.DiffMeans {
				t.Errorf("dominant component is %v, want diff-means", top.Kind)
			}
			if !v.Significant {
				t.Error("planted 1.6σ shift should be significant")
			}
			if !strings.Contains(v.Explanation, "higher values") {
				t.Errorf("explanation %q should mention higher values", v.Explanation)
			}
			return
		}
	}
	t.Fatal("mean-shift view not found")
}

func TestScaleViewDetected(t *testing.T) {
	pd := plantedFixture(t, 4)
	e := defaultEngine(t)
	rep, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Views {
		if len(v.Columns) == 2 && strings.HasPrefix(v.Columns[0], "view1") {
			top := v.Components[0]
			if top.Kind != effect.DiffStdDevs {
				t.Errorf("dominant component is %v, want diff-stddevs", top.Kind)
			}
			if !strings.Contains(v.Explanation, "variance") {
				t.Errorf("explanation %q should mention variance", v.Explanation)
			}
			return
		}
	}
	t.Fatal("scale view not found")
}

func TestCorrelationFlipDetected(t *testing.T) {
	pd, err := synth.Planted(synth.PlantedConfig{
		Seed: 5, Rows: 4000, SelectionFraction: 0.35,
		Views:     []synth.PlantedView{{Cols: 2, WithinCorr: 0.8, DecorrelateInside: true}},
		NoiseCols: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := defaultEngine(t)
	rep, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Views) == 0 {
		t.Fatal("no views")
	}
	top := rep.Views[0]
	if !strings.HasPrefix(top.Columns[0], "view0") {
		t.Fatalf("top view %v is not the planted one", top.Columns)
	}
	var hasCorrComp bool
	for _, c := range top.Components {
		if c.Kind == effect.DiffCorrelations && c.Valid() {
			hasCorrComp = true
			if c.Outside < 0.6 || math.Abs(c.Inside) > 0.25 {
				t.Errorf("correlation component in/out = %v/%v, want ≈0/≈0.8", c.Inside, c.Outside)
			}
		}
	}
	if !hasCorrComp {
		t.Error("no correlation component on the planted correlation-flip view")
	}
}

func TestCliquesGeneratorAgrees(t *testing.T) {
	pd := plantedFixture(t, 6)
	cfg := DefaultConfig()
	cfg.Generator = Cliques
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Views) < 2 {
		t.Fatalf("cliques generator found %d views", len(rep.Views))
	}
	found := 0
	for _, v := range rep.Views[:2] {
		if strings.HasPrefix(v.Columns[0], "view") {
			found++
		}
	}
	if found != 2 {
		t.Errorf("cliques generator missed planted views: %v", rep.Views[:2])
	}
}

func TestRobustMode(t *testing.T) {
	pd := plantedFixture(t, 7)
	cfg := DefaultConfig()
	cfg.Robust = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	// The location component must now be Cliff's delta.
	foundRobust := false
	for _, v := range rep.Views {
		for _, c := range v.Components {
			if c.Kind == effect.DiffLocationsRobust {
				foundRobust = true
			}
			if c.Kind == effect.DiffMeans {
				t.Error("robust mode still emits diff-means")
			}
		}
	}
	if !foundRobust {
		t.Error("robust mode emitted no rank-based components")
	}
}

func TestRequireSignificantFiltersNullViews(t *testing.T) {
	// Pure noise: no view should survive a significance requirement.
	pd, err := synth.Planted(synth.PlantedConfig{
		Seed: 8, Rows: 800, SelectionFraction: 0.3,
		Views:     []synth.PlantedView{{Cols: 2, WithinCorr: 0.7}}, // no distortion
		NoiseCols: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.RequireSignificant = true
	cfg.Alpha = 0.001
	e, _ := New(cfg)
	rep, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Views {
		if !v.Significant {
			t.Errorf("insignificant view %v survived RequireSignificant", v.Columns)
		}
	}
}

func TestBonferroniIsMoreConservative(t *testing.T) {
	pd := plantedFixture(t, 9)
	minCfg := DefaultConfig()
	minCfg.Aggregation = hypo.MinP
	bonCfg := DefaultConfig()
	bonCfg.Aggregation = hypo.Bonferroni
	eMin, _ := New(minCfg)
	eBon, _ := New(bonCfg)
	repMin, err := eMin.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	repBon, err := eBon.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	if len(repMin.Views) == 0 || len(repBon.Views) == 0 {
		t.Fatal("no views")
	}
	// Same top view, larger (or equal) p under Bonferroni.
	if repBon.Views[0].PValue < repMin.Views[0].PValue-1e-15 {
		t.Errorf("Bonferroni p %v < min p %v", repBon.Views[0].PValue, repMin.Views[0].PValue)
	}
}

func TestStatsCacheSharing(t *testing.T) {
	pd := plantedFixture(t, 10)
	e := defaultEngine(t)
	rep1, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.CacheHit {
		t.Error("first query should be a cache miss")
	}
	// Second query on the same table with a different selection.
	sel2 := pd.Selection.Clone().Not()
	rep2, err := e.Characterize(pd.Frame, sel2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.CacheHit {
		t.Error("second query should hit the dependency cache")
	}
	e.InvalidateCache()
	rep3, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.CacheHit {
		t.Error("query after invalidation should miss")
	}
}

func TestCategoricalViews(t *testing.T) {
	// Build a table where a categorical column is the signal: selection is
	// 80% "red", complement is uniform.
	n := 900
	colors := make([]string, n)
	vals := make([]float64, n)
	sel := frame.NewBitmap(n)
	for i := 0; i < n; i++ {
		vals[i] = float64(i % 17)
		if i < 300 {
			sel.Set(i)
			if i%10 < 8 {
				colors[i] = "red"
			} else {
				colors[i] = "blue"
			}
		} else {
			switch i % 3 {
			case 0:
				colors[i] = "red"
			case 1:
				colors[i] = "blue"
			default:
				colors[i] = "green"
			}
		}
	}
	f := frame.MustNew("t", []*frame.Column{
		frame.NewCategoricalColumn("color", colors),
		frame.NewNumericColumn("filler", vals),
	})
	e := defaultEngine(t)
	rep, err := e.Characterize(f, sel)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Views {
		if v.Columns[0] == "color" {
			if v.Components[0].Kind != effect.DiffFrequencies {
				t.Errorf("color view component = %v", v.Components[0].Kind)
			}
			if !strings.Contains(v.Explanation, "red") {
				t.Errorf("explanation %q should name the shifted category", v.Explanation)
			}
			return
		}
	}
	t.Fatal("categorical view not found")
}

func TestWarningsForDegenerateColumns(t *testing.T) {
	n := 60
	good := make([]float64, n)
	mostlyNull := make([]float64, n)
	for i := range good {
		good[i] = float64(i)
		mostlyNull[i] = math.NaN()
	}
	mostlyNull[0] = 1
	f := frame.MustNew("t", []*frame.Column{
		frame.NewNumericColumn("good", good),
		frame.NewNumericColumn("mostly_null", mostlyNull),
	})
	sel := frame.BitmapFromIndices(n, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	e := defaultEngine(t)
	rep, err := e.Characterize(f, sel)
	if err != nil {
		t.Fatal(err)
	}
	foundWarning := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "mostly_null") {
			foundWarning = true
		}
	}
	if !foundWarning {
		t.Errorf("expected warning about mostly_null, got %v", rep.Warnings)
	}
	for _, v := range rep.Views {
		for _, c := range v.Columns {
			if c == "mostly_null" {
				t.Error("unusable column appeared in a view")
			}
		}
	}
}

func TestMaxDimOne(t *testing.T) {
	pd := plantedFixture(t, 11)
	cfg := DefaultConfig()
	cfg.MaxDim = 1
	e, _ := New(cfg)
	rep, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Views {
		if len(v.Columns) != 1 {
			t.Errorf("MaxDim=1 produced view %v", v.Columns)
		}
	}
}

func TestMaxViewsCap(t *testing.T) {
	pd := plantedFixture(t, 12)
	cfg := DefaultConfig()
	cfg.MaxViews = 2
	e, _ := New(cfg)
	rep, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Views) > 2 {
		t.Errorf("MaxViews=2 returned %d views", len(rep.Views))
	}
}

func TestTimingsPopulated(t *testing.T) {
	pd := plantedFixture(t, 13)
	e := defaultEngine(t)
	rep, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timings.Preparation <= 0 || rep.Timings.Total() <= 0 {
		t.Errorf("timings not populated: %+v", rep.Timings)
	}
}

func TestLinkageAblationStillRespectsTightness(t *testing.T) {
	pd := plantedFixture(t, 14)
	for _, linkage := range []cluster.Linkage{cluster.Single, cluster.Average} {
		cfg := DefaultConfig()
		cfg.Linkage = linkage
		e, _ := New(cfg)
		rep, err := e.Characterize(pd.Frame, pd.Selection)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Views {
			if v.Tightness < cfg.MinTight-1e-9 {
				t.Errorf("%v linkage: view %v tightness %v < %v",
					linkage, v.Columns, v.Tightness, cfg.MinTight)
			}
		}
	}
}

func TestMeasureAblation(t *testing.T) {
	pd := plantedFixture(t, 15)
	for _, m := range []depend.Measure{depend.AbsSpearman, depend.NormalizedMI} {
		cfg := DefaultConfig()
		cfg.Measure = m
		if m == depend.NormalizedMI {
			// MI scores are smaller; relax the threshold accordingly.
			cfg.MinTight = 0.15
		}
		e, _ := New(cfg)
		rep, err := e.Characterize(pd.Frame, pd.Selection)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(rep.Views) == 0 {
			t.Errorf("%v: no views", m)
		}
	}
}

func TestGeneratorString(t *testing.T) {
	if Clustering.String() != "clustering" || Cliques.String() != "cliques" ||
		CandidateGen(7).String() != "CandidateGen(7)" {
		t.Error("CandidateGen.String wrong")
	}
}
