package core

import (
	"strings"
	"testing"

	"repro/internal/effect"
	"repro/internal/frame"
	"repro/internal/randx"
	"repro/internal/synth"
)

func TestExtendedComponentsEmitted(t *testing.T) {
	pd := plantedFixture(t, 20)
	cfg := DefaultConfig()
	cfg.Extended = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[effect.Kind]bool{}
	for _, v := range rep.Views {
		for _, c := range v.Components {
			if c.Valid() {
				kinds[c.Kind] = true
			}
		}
	}
	if !kinds[effect.DiffQuantiles] {
		t.Error("extended mode emitted no quantile components")
	}
	if !kinds[effect.DiffTails] {
		t.Error("extended mode emitted no tail components")
	}
}

func TestExtendedMixedSeparation(t *testing.T) {
	// Build a table where a categorical column separates a numeric one
	// inside the selection only; extended mode must produce the
	// DiffSeparation component on that pair.
	r := randx.New(9)
	n := 2000
	cats := make([]string, n)
	nums := make([]float64, n)
	filler := make([]float64, n)
	sel := frame.NewBitmap(n)
	labels := []string{"p", "q", "r"}
	for i := 0; i < n; i++ {
		g := r.Intn(3)
		cats[i] = labels[g]
		filler[i] = r.NormFloat64()
		if i < 600 {
			sel.Set(i)
			nums[i] = float64(g)*4 + r.NormFloat64() // separated inside
		} else {
			nums[i] = r.NormFloat64() // flat outside
		}
	}
	f := frame.MustNew("t", []*frame.Column{
		frame.NewCategoricalColumn("group", cats),
		frame.NewNumericColumn("value", nums),
		frame.NewNumericColumn("filler", filler),
	})
	cfg := DefaultConfig()
	cfg.Extended = true
	cfg.MinTight = 0.2 // η between group and value is moderate overall
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Characterize(f, sel)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Views {
		for _, c := range v.Components {
			if c.Kind == effect.DiffSeparation && c.Valid() {
				if c.Inside < 0.5 || c.Outside > 0.3 {
					t.Errorf("separation η in/out = %v/%v", c.Inside, c.Outside)
				}
				return
			}
		}
	}
	t.Error("no DiffSeparation component found in any view")
}

func TestExtendedWeightsAutoFilled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Extended = true
	// User weights without extended entries: New must fill them.
	cfg.Weights = effect.Weights{effect.DiffMeans: 2}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Config().Weights.Get(effect.DiffQuantiles) != 1 {
		t.Error("extended weights not auto-filled")
	}
	if e.Config().Weights.Get(effect.DiffMeans) != 2 {
		t.Error("user weights overwritten")
	}
}

func TestSamplingCapsRows(t *testing.T) {
	pd, err := synth.Planted(synth.PlantedConfig{
		Seed: 31, Rows: 20000, SelectionFraction: 0.25,
		Views:     []synth.PlantedView{{Cols: 2, WithinCorr: 0.75, MeanShift: 1.5}},
		NoiseCols: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SampleRows = 2000
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SampledRows == 0 {
		t.Fatal("sampling did not engage")
	}
	if rep.SampledRows > 2200 {
		t.Fatalf("sampled %d rows, cap was 2000", rep.SampledRows)
	}
	// The planted view must still be recovered from the sample.
	if len(rep.Views) == 0 {
		t.Fatal("no views from sampled run")
	}
	if !strings.HasPrefix(rep.Views[0].Columns[0], "view0") {
		t.Errorf("top view %v is not the planted one", rep.Views[0].Columns)
	}
}

func TestSamplingDisabledBelowCap(t *testing.T) {
	pd := plantedFixture(t, 33) // 3000 rows
	cfg := DefaultConfig()
	cfg.SampleRows = 50000
	e, _ := New(cfg)
	rep, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SampledRows != 0 {
		t.Fatalf("sampling engaged below the cap: %d", rep.SampledRows)
	}
}

func TestSamplingDeterministic(t *testing.T) {
	pd, err := synth.Planted(synth.PlantedConfig{
		Seed: 35, Rows: 10000, SelectionFraction: 0.3,
		Views:     []synth.PlantedView{{Cols: 2, WithinCorr: 0.7, MeanShift: 1.2}},
		NoiseCols: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SampleRows = 1500
	e, _ := New(cfg)
	rep1, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := e.Characterize(pd.Frame, pd.Selection)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Views) != len(rep2.Views) {
		t.Fatal("sampled runs disagree on view count")
	}
	for i := range rep1.Views {
		if rep1.Views[i].Score != rep2.Views[i].Score {
			t.Fatal("sampled runs disagree on scores")
		}
	}
}
