package core

import (
	"math"
	"math/bits"

	"repro/internal/effect"
	"repro/internal/frame"
	"repro/internal/par"
)

// workers returns the effective worker count for this engine's parallel
// stages: Config.Parallelism, with 0 meaning all CPUs. Each stage reads it
// once and passes the same count to both its scratch pool and par.For, so
// worker indices always address a valid scratch slot.
func (e *Engine) workers() int { return par.Workers(e.cfg.Parallelism) }

// scratchPool lazily allocates one scratch per worker. Worker indices are
// goroutine-stable for the duration of one par.For, so slot access needs
// no locking.
type scratchPool struct {
	slots []*scoreScratch
}

func newScratchPool(workers int) *scratchPool {
	return &scratchPool{slots: make([]*scoreScratch, workers)}
}

// get returns worker w's scratch, allocating it on first use.
func (p *scratchPool) get(w int) *scoreScratch {
	if p.slots[w] == nil {
		p.slots[w] = &scoreScratch{}
	}
	return p.slots[w]
}

// scoreScratch holds the per-worker buffers reused across candidate-scoring
// tasks: the row-aligned splits feeding the two-dimensional components and
// the effect-size scratch. Everything here is consumed before the task
// returns — nothing scratch-backed escapes into a View.
type scoreScratch struct {
	inA, inB, outA, outB []float64
	catIn, catOut        []int32
	eff                  effect.Scratch
}

// alignedSplit extracts row-aligned complete cases of two numeric columns,
// split by the selection mask and restricted to consider when non-nil,
// walking the selection words like splitNumericCol. The returned slices
// alias the scratch and are valid until the next call.
func (s *scoreScratch) alignedSplit(a, b *frame.Column, sel, consider *frame.Bitmap) (inA, inB, outA, outB []float64) {
	inA, inB = s.inA[:0], s.inB[:0]
	outA, outB = s.outA[:0], s.outB[:0]
	af, bf := a.Floats(), b.Floats()
	splitWords(len(af), sel, consider, func(base int, inW, outW uint64) {
		for ; inW != 0; inW &= inW - 1 {
			i := base + bits.TrailingZeros64(inW)
			va, vb := af[i], bf[i]
			if !math.IsNaN(va) && !math.IsNaN(vb) {
				inA = append(inA, va)
				inB = append(inB, vb)
			}
		}
		for ; outW != 0; outW &= outW - 1 {
			i := base + bits.TrailingZeros64(outW)
			va, vb := af[i], bf[i]
			if !math.IsNaN(va) && !math.IsNaN(vb) {
				outA = append(outA, va)
				outB = append(outB, vb)
			}
		}
	})
	s.inA, s.inB, s.outA, s.outB = inA, inB, outA, outB
	return inA, inB, outA, outB
}

// mixedSplit extracts the row-aligned categorical codes and numeric values
// feeding the DiffSeparation component. The returned slices alias the
// scratch and are valid until the next call.
func (s *scoreScratch) mixedSplit(cc, nc *frame.Column, sel, consider *frame.Bitmap) (catIn []int32, numIn []float64, catOut []int32, numOut []float64) {
	catIn, catOut = s.catIn[:0], s.catOut[:0]
	numIn, numOut = s.inA[:0], s.outA[:0]
	codes, floats := cc.Codes(), nc.Floats()
	splitWords(len(codes), sel, consider, func(base int, inW, outW uint64) {
		for ; inW != 0; inW &= inW - 1 {
			i := base + bits.TrailingZeros64(inW)
			if codes[i] >= 0 && !math.IsNaN(floats[i]) {
				catIn = append(catIn, codes[i])
				numIn = append(numIn, floats[i])
			}
		}
		for ; outW != 0; outW &= outW - 1 {
			i := base + bits.TrailingZeros64(outW)
			if codes[i] >= 0 && !math.IsNaN(floats[i]) {
				catOut = append(catOut, codes[i])
				numOut = append(numOut, floats[i])
			}
		}
	})
	s.catIn, s.catOut = catIn, catOut
	s.inA, s.outA = numIn, numOut
	return catIn, numIn, catOut, numOut
}
