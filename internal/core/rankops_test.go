package core

import (
	"runtime"
	"testing"

	"repro/internal/depend"
	"repro/internal/frame"
	"repro/internal/stats"
)

// countNumeric returns how many numeric columns of f clear the MinRows
// usability bar on both sides of sel — the columns the robust path must
// rank exactly once each.
func countNumeric(t *testing.T, f *frame.Frame, sel *frame.Bitmap, minRows int) int {
	t.Helper()
	n := 0
	for _, idx := range f.NumericColumns() {
		in, out := splitNumericCol(f.Col(idx), sel, nil)
		if len(in) >= minRows && len(out) >= minRows {
			n++
		}
	}
	return n
}

// TestRobustRankBudget asserts the tentpole invariant end to end: a robust
// characterization performs exactly one ranking pass per usable numeric
// column — the single pass shared by Cliff's delta, its medians and the
// Mann-Whitney bound — and the budget holds for every worker count while
// the output stays byte-identical to the sequential run. Candidate views
// reuse the per-column components, so the cost is per column, not per
// column per view (strictly better than the acceptance bound).
func TestRobustRankBudget(t *testing.T) {
	pd := plantedFixture(t, 77)
	cfg := DefaultConfig()
	cfg.Robust = true

	wantRanks := int64(countNumeric(t, pd.Frame, pd.Selection, cfg.MinRows))
	if wantRanks == 0 {
		t.Fatal("fixture has no usable numeric columns")
	}

	var wantFP string
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		cfg.Parallelism = workers
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		before := stats.RankOps()
		rep, err := e.Characterize(pd.Frame, pd.Selection)
		if err != nil {
			t.Fatal(err)
		}
		got := stats.RankOps() - before
		if got != wantRanks {
			t.Errorf("parallelism=%d: %d ranking passes for %d usable numeric columns, want exactly one each",
				workers, got, wantRanks)
		}
		fp := fingerprint(rep)
		if workers == 1 {
			wantFP = fp
			if len(rep.Views) == 0 {
				t.Fatal("reference run found no views")
			}
			continue
		}
		if fp != wantFP {
			t.Errorf("parallelism=%d: robust output differs from sequential", workers)
		}
	}
}

// TestRobustExtendedRankBudget asserts the budget survives extended mode,
// where the quantile-shift and tail components share the column's Ranking —
// its Mann-Whitney bound AND its sort permutation: one ranking pass per
// usable numeric column and zero per-group copy sorts, for every worker
// count, with byte-identical output. (The non-robust extended path still
// pays two copy sorts per column; TestExtendedSortBudgetNonRobust pins
// that contrast.)
func TestRobustExtendedRankBudget(t *testing.T) {
	pd := plantedFixture(t, 78)
	cfg := DefaultConfig()
	cfg.Robust = true
	cfg.Extended = true

	wantRanks := int64(countNumeric(t, pd.Frame, pd.Selection, cfg.MinRows))
	var wantFP string
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		cfg.Parallelism = workers
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		beforeRank, beforeSort := stats.RankOps(), stats.SortOps()
		rep, err := e.Characterize(pd.Frame, pd.Selection)
		if err != nil {
			t.Fatal(err)
		}
		if got := stats.RankOps() - beforeRank; got != wantRanks {
			t.Errorf("parallelism=%d: %d ranking passes for %d usable numeric columns, want exactly one each",
				workers, got, wantRanks)
		}
		if got := stats.SortOps() - beforeSort; got != 0 {
			t.Errorf("parallelism=%d: %d per-group copy sorts, want 0 (order statistics must come from the ranking permutation)",
				workers, got)
		}
		fp := fingerprint(rep)
		if workers == 1 {
			wantFP = fp
			if len(rep.Views) == 0 {
				t.Fatal("reference run found no views")
			}
			continue
		}
		if fp != wantFP {
			t.Errorf("parallelism=%d: extended robust output differs from sequential", workers)
		}
	}
}

// TestExtendedSortBudgetNonRobust pins the contrast: without a Ranking to
// share, the extended quantile and tail components sort one copy each per
// usable numeric column.
func TestExtendedSortBudgetNonRobust(t *testing.T) {
	pd := plantedFixture(t, 78)
	cfg := DefaultConfig()
	cfg.Extended = true
	cfg.Parallelism = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	usable := int64(countNumeric(t, pd.Frame, pd.Selection, cfg.MinRows))
	before := stats.SortOps()
	if _, err := e.Characterize(pd.Frame, pd.Selection); err != nil {
		t.Fatal(err)
	}
	// Two sorted copies per component family call: 2 (quantiles) + 2
	// (tails) per usable numeric column.
	if got := stats.SortOps() - before; got != 4*usable {
		t.Errorf("non-robust extended: %d copy sorts for %d usable numeric columns, want %d",
			got, usable, 4*usable)
	}
}

// TestSpearmanMatrixRankBudget asserts the dependency matrix's rank-once
// phase: under the Spearman measure the matrix ranks each NULL-free numeric
// column once — cols passes, not the 2·cols·(cols−1) a per-pair Spearman
// would pay — for every worker count, with identical cells.
func TestSpearmanMatrixRankBudget(t *testing.T) {
	pd := plantedFixture(t, 79)
	f := pd.Frame
	numeric := 0
	for _, idx := range f.NumericColumns() {
		if f.Col(idx).NullCount() == 0 && f.Col(idx).Len() >= 3 {
			numeric++
		}
	}
	if numeric < 3 {
		t.Fatal("fixture has too few numeric columns")
	}

	var want *depend.Matrix
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		before := stats.RankOps()
		m := depend.NewMatrixParallel(f, depend.AbsSpearman, workers)
		if got := stats.RankOps() - before; got != int64(numeric) {
			t.Errorf("workers=%d: %d ranking passes for %d columns, want one each", workers, got, numeric)
		}
		if want == nil {
			want = m
			continue
		}
		for i := 0; i < m.Len(); i++ {
			for j := 0; j < m.Len(); j++ {
				if m.At(i, j) != want.At(i, j) {
					t.Fatalf("workers=%d: cell (%d,%d) = %v, want %v", workers, i, j, m.At(i, j), want.At(i, j))
				}
			}
		}
	}
}
