package core

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/frame"
	"repro/internal/randx"
)

// adversarialFixture builds a table whose columns force every ranking
// kernel and every edge the kernels distinguish: NaN-bearing (NULL)
// columns, signed-zero mixtures, heavy ties, low-cardinality integral
// columns (the counting shape), wide-range floats (the radix shape), and a
// planted mean shift so the pipeline actually produces views.
func adversarialFixture(t *testing.T) (*frame.Frame, *frame.Bitmap) {
	t.Helper()
	const rows = 900
	r := randx.New(451)
	sel := frame.NewBitmap(rows)
	for i := 0; i < rows/4; i++ {
		sel.Set(i * 3 % rows)
	}
	col := func(name string, f func(i int) float64) *frame.Column {
		vals := make([]float64, rows)
		for i := range vals {
			vals[i] = f(i)
		}
		return frame.NewNumericColumn(name, vals)
	}
	shift := func(i int, v float64) float64 {
		if sel.Get(i) {
			return v + 1.5
		}
		return v
	}
	cols := []*frame.Column{
		col("gauss", func(i int) float64 { return shift(i, r.NormFloat64()) }),
		col("nulls", func(i int) float64 {
			if r.Intn(5) == 0 {
				return math.NaN()
			}
			return shift(i, r.NormFloat64())
		}),
		col("zeros", func(i int) float64 {
			switch r.Intn(4) {
			case 0:
				return math.Copysign(0, -1)
			case 1:
				return 0
			default:
				return shift(i, float64(r.Intn(3)-1))
			}
		}),
		col("ties", func(i int) float64 { return shift(i, 0.25*float64(r.Intn(4))) }),
		col("lowcard", func(i int) float64 {
			v := float64(r.Intn(12))
			if sel.Get(i) {
				v += 3
			}
			return v
		}),
		col("wide", func(i int) float64 { return shift(i, r.Uniform(-1e9, 1e9)) }),
		col("constant", func(i int) float64 { return 7 }),
	}
	f, err := frame.New("adversarial", cols)
	if err != nil {
		t.Fatal(err)
	}
	return f, sel
}

// TestKernelDeterminismAdversarial asserts the full report is byte-identical
// across worker counts on the kernel-adversarial table, under the robust
// extended configuration that drives every ranking and quantile consumer,
// cold and warm. This is the end-to-end guard for the per-column kernel
// selector: whatever strategy each column lands on, and however scratches
// are reused across workers, the observable output must not move.
func TestKernelDeterminismAdversarial(t *testing.T) {
	f, sel := adversarialFixture(t)
	var wantCold, wantWarm string
	for _, p := range []int{1, 2, runtime.NumCPU()} {
		cfg := DefaultConfig()
		cfg.Robust = true
		cfg.Extended = true
		cfg.Parallelism = p
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := e.Characterize(f, sel)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := e.Characterize(f, sel)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.CacheHit {
			t.Fatalf("parallelism=%d: warm run missed the cache", p)
		}
		fpCold, fpWarm := fingerprint(cold), fingerprint(warm)
		if p == 1 {
			wantCold, wantWarm = fpCold, fpWarm
			if len(cold.Views) == 0 {
				t.Fatal("reference run found no views on the planted columns")
			}
			continue
		}
		if fpCold != wantCold {
			t.Errorf("parallelism=%d: cold report diverges from sequential", p)
		}
		if fpWarm != wantWarm {
			t.Errorf("parallelism=%d: warm report diverges from sequential", p)
		}
	}
}
