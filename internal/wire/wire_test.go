package wire

import (
	"math"
	"testing"
)

// TestRoundTrip pins every primitive through one encode/decode pass,
// including the NaN-bit and negative-zero fidelity the report codec
// depends on.
func TestRoundTrip(t *testing.T) {
	var w Buf
	w.U8(7)
	w.U32(0xdeadbeef)
	w.U64(1 << 63)
	w.I64(-42)
	w.F64(math.NaN())
	w.F64(math.Copysign(0, -1))
	w.Bool(true)
	w.Bool(false)
	w.Str("héllo")
	w.Str("")
	w.Strs([]string{"a", "b"})
	w.Strs(nil)

	r := &Reader{What: "wire: test", B: w.B}
	if r.U8() != 7 || r.U32() != 0xdeadbeef || r.U64() != 1<<63 || r.I64() != -42 {
		t.Fatal("integer round trip failed")
	}
	if !math.IsNaN(r.F64()) {
		t.Error("NaN did not survive")
	}
	if v := r.F64(); v != 0 || !math.Signbit(v) {
		t.Error("negative zero did not survive")
	}
	if !r.Bool() || r.Bool() {
		t.Error("bool round trip failed")
	}
	if r.Str() != "héllo" || r.Str() != "" {
		t.Error("string round trip failed")
	}
	if ss := r.Strs(); len(ss) != 2 || ss[0] != "a" || ss[1] != "b" {
		t.Errorf("string list round trip failed: %v", ss)
	}
	if ss := r.Strs(); ss != nil {
		t.Errorf("empty string list decoded as %v", ss)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestStrictness pins the sticky-error behavior: truncation, invalid bool
// bytes, oversized strings/counts, and trailing bytes all fail, and a
// failed reader keeps returning zero values.
func TestStrictness(t *testing.T) {
	r := &Reader{What: "wire: test", B: []byte{1, 2}}
	if r.U64(); r.Err == nil {
		t.Error("truncated u64 accepted")
	}
	if r.U8() != 0 || r.U32() != 0 || r.F64() != 0 || r.Str() != "" || r.Strs() != nil || r.Count(1) != 0 {
		t.Error("failed reader returned non-zero values")
	}
	if r.Finish() == nil {
		t.Error("Finish cleared the sticky error")
	}

	var w Buf
	w.Bool(true)
	bad := append([]byte(nil), w.B...)
	bad[0] = 9
	r = &Reader{What: "wire: test", B: bad}
	if r.Bool(); r.Err == nil {
		t.Error("invalid bool byte accepted")
	}

	var huge Buf
	huge.U64(1 << 40) // a string/count length far past the payload
	r = &Reader{What: "wire: test", B: huge.B}
	if r.Str(); r.Err == nil {
		t.Error("oversized string accepted")
	}
	r = &Reader{What: "wire: test", B: huge.B}
	if r.Count(1); r.Err == nil {
		t.Error("oversized count accepted")
	}

	var ok Buf
	ok.U8(1)
	r = &Reader{What: "wire: test", B: append(ok.B, 0)}
	r.U8()
	if r.Finish() == nil {
		t.Error("trailing byte accepted")
	}
}

// TestCheckMagic covers the header validation shared by every codec.
func TestCheckMagic(t *testing.T) {
	magic := [4]byte{'Z', 'G', 'X', 3}
	if err := CheckMagic([]byte{'Z', 'G', 'X', 3, 99}, magic, "t"); err != nil {
		t.Errorf("valid header rejected: %v", err)
	}
	for name, data := range map[string][]byte{
		"short":       {'Z'},
		"wrong magic": {'A', 'B', 'C', 3},
		"version":     {'Z', 'G', 'X', 4},
	} {
		if err := CheckMagic(data, magic, "t"); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestBulkRuns covers the bulk u64/f64 helpers the chunk transport leans
// on: round-trip fidelity (bit-exact floats), empty runs, and run lengths
// that exceed the remaining payload.
func TestBulkRuns(t *testing.T) {
	u := []uint64{0, 1, 1<<64 - 1, 0xdeadbeef}
	f := []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), -2.5}

	var w Buf
	w.U64s(u)
	w.F64s(f)
	r := &Reader{What: "wire: test", B: w.B}
	gotU := r.U64s(len(u))
	gotF := r.F64s(len(f))
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	for i := range u {
		if gotU[i] != u[i] {
			t.Errorf("u64 %d: %#x, want %#x", i, gotU[i], u[i])
		}
	}
	for i := range f {
		if math.Float64bits(gotF[i]) != math.Float64bits(f[i]) {
			t.Errorf("f64 %d: %v, want %v", i, gotF[i], f[i])
		}
	}

	// Empty runs write and read nothing.
	var empty Buf
	empty.U64s(nil)
	empty.F64s(nil)
	if len(empty.B) != 0 {
		t.Errorf("empty runs wrote %d bytes", len(empty.B))
	}
	r = &Reader{What: "wire: test", B: nil}
	if got := r.U64s(0); got != nil || r.Err != nil {
		t.Errorf("zero-length u64 run: %v %v", got, r.Err)
	}

	// A run past the payload fails without allocating.
	r = &Reader{What: "wire: test", B: make([]byte, 16)}
	if r.U64s(3); r.Err == nil {
		t.Error("oversized u64 run accepted")
	}
	r = &Reader{What: "wire: test", B: make([]byte, 16)}
	if r.F64s(1 << 50); r.Err == nil {
		t.Error("huge f64 run accepted")
	}
	r = &Reader{What: "wire: test", B: make([]byte, 16)}
	if r.U64s(-1); r.Err == nil {
		t.Error("negative run accepted")
	}

	// A sticky error suppresses reads.
	r = &Reader{What: "wire: test", B: make([]byte, 16)}
	r.Failf("poisoned")
	if got := r.F64s(2); got != nil {
		t.Error("poisoned reader still produced a run")
	}
}
