// Package wire holds the byte-level primitives shared by the versioned
// codecs of the serving layer: core's report codec and remote's
// frame/request codec. The conventions are deliberately boring — fixed-width
// little-endian integers, float64s as IEEE bit patterns (NaN payloads
// survive), one-byte bools that reject anything but 0/1, length-prefixed
// strings — because the contract on top of them is strong: every codec is
// canonical (equal values encode to equal bytes) and strict (truncation,
// oversized counts, and trailing bytes are errors, never a partial decode).
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Buf accumulates an encoding; the zero value is ready to use. B is the
// encoded payload.
type Buf struct{ B []byte }

// U8 appends one byte.
func (w *Buf) U8(v byte) { w.B = append(w.B, v) }

// U32 appends a 32-bit value, little-endian.
func (w *Buf) U32(v uint32) { w.B = binary.LittleEndian.AppendUint32(w.B, v) }

// U64 appends a 64-bit value, little-endian.
func (w *Buf) U64(v uint64) { w.B = binary.LittleEndian.AppendUint64(w.B, v) }

// I64 appends a signed 64-bit value as its two's-complement bits.
func (w *Buf) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 as its IEEE bit pattern.
func (w *Buf) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends one byte, 0 or 1.
func (w *Buf) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U64s appends a fixed-width run of 64-bit values with no count prefix —
// the caller's schema fixes the length (chunk geometry, word counts).
func (w *Buf) U64s(vs []uint64) {
	for _, v := range vs {
		w.U64(v)
	}
}

// F64s appends a fixed-width run of float64 bit patterns with no count
// prefix.
func (w *Buf) F64s(vs []float64) {
	for _, v := range vs {
		w.F64(v)
	}
}

// Str appends a length-prefixed string.
func (w *Buf) Str(s string) {
	w.U64(uint64(len(s)))
	w.B = append(w.B, s...)
}

// Strs appends a count-prefixed string list.
func (w *Buf) Strs(ss []string) {
	w.U64(uint64(len(ss)))
	for _, s := range ss {
		w.Str(s)
	}
}

// Reader consumes an encoding; the first failure sticks and every later
// read returns zero values, so decoders can be written straight-line and
// check Err once (or via Finish). What prefixes every error message, e.g.
// "core: decoding report".
type Reader struct {
	What string
	B    []byte
	Off  int
	Err  error
}

// Failf records the first decoding failure.
func (r *Reader) Failf(format string, args ...any) {
	if r.Err == nil {
		r.Err = fmt.Errorf(r.What+": "+format, args...)
	}
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	if r.Err != nil {
		return 0
	}
	if r.Off >= len(r.B) {
		r.Failf("truncated at byte %d", r.Off)
		return 0
	}
	v := r.B[r.Off]
	r.Off++
	return v
}

// U32 reads a little-endian 32-bit value.
func (r *Reader) U32() uint32 {
	if r.Err != nil {
		return 0
	}
	if r.Off+4 > len(r.B) {
		r.Failf("truncated at byte %d", r.Off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.B[r.Off:])
	r.Off += 4
	return v
}

// U64 reads a little-endian 64-bit value.
func (r *Reader) U64() uint64 {
	if r.Err != nil {
		return 0
	}
	if r.Off+8 > len(r.B) {
		r.Failf("truncated at byte %d", r.Off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.B[r.Off:])
	r.Off += 8
	return v
}

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 from its IEEE bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads one byte and rejects anything but 0/1 — a corrupted flag is a
// decode error, not a coerced value.
func (r *Reader) Bool() bool {
	v := r.U8()
	if v > 1 {
		r.Failf("invalid bool byte %d at %d", v, r.Off-1)
		return false
	}
	return v == 1
}

// Str reads a length-prefixed string, bounding the length by the remaining
// payload.
func (r *Reader) Str() string {
	n := r.U64()
	if r.Err != nil {
		return ""
	}
	if n > uint64(len(r.B)-r.Off) {
		r.Failf("string of %d bytes exceeds remaining %d", n, len(r.B)-r.Off)
		return ""
	}
	s := string(r.B[r.Off : r.Off+int(n)])
	r.Off += int(n)
	return s
}

// U64s reads a fixed-length run of 64-bit values (the schema-implied
// counterpart of Buf.U64s), bounds-checked as one block before allocating.
func (r *Reader) U64s(n int) []uint64 {
	if r.Err != nil || n == 0 {
		return nil
	}
	if n < 0 || uint64(n) > uint64(len(r.B)-r.Off)/8 {
		r.Failf("run of %d u64s exceeds remaining payload", n)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	return out
}

// F64s reads a fixed-length run of float64s from their IEEE bit patterns.
func (r *Reader) F64s(n int) []float64 {
	if r.Err != nil || n == 0 {
		return nil
	}
	if n < 0 || uint64(n) > uint64(len(r.B)-r.Off)/8 {
		r.Failf("run of %d f64s exceeds remaining payload", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// Count reads a list length and bounds it against the smallest possible
// element footprint, so a corrupted or hostile payload cannot force a huge
// allocation before truncation is detected.
func (r *Reader) Count(minElemBytes int) int {
	n := r.U64()
	if r.Err != nil {
		return 0
	}
	if n > uint64(len(r.B)-r.Off)/uint64(minElemBytes) {
		r.Failf("count %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

// Strs reads a count-prefixed string list.
func (r *Reader) Strs() []string {
	n := r.Count(8)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.Str()
	}
	return out
}

// Finish returns the sticky error, or a trailing-bytes error when the
// payload was not consumed exactly.
func (r *Reader) Finish() error {
	if r.Err != nil {
		return r.Err
	}
	if r.Off != len(r.B) {
		return fmt.Errorf("%s: %d trailing bytes", r.What, len(r.B)-r.Off)
	}
	return nil
}

// CheckMagic validates a 3-byte magic plus a version byte at the head of a
// payload.
func CheckMagic(data []byte, magic [4]byte, what string) error {
	if len(data) < 4 {
		return fmt.Errorf("%s: %d bytes is shorter than the header", what, len(data))
	}
	if data[0] != magic[0] || data[1] != magic[1] || data[2] != magic[2] {
		return fmt.Errorf("%s: bad magic %q", what, data[:3])
	}
	if data[3] != magic[3] {
		return fmt.Errorf("%s: unsupported wire version %d (this build speaks %d)", what, data[3], magic[3])
	}
	return nil
}
