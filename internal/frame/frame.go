package frame

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind identifies the type of a column.
type Kind int

const (
	// Numeric columns hold float64 values; NaN encodes NULL.
	Numeric Kind = iota
	// Categorical columns hold dictionary-encoded strings; code -1
	// encodes NULL.
	Categorical
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Column is a single named column of a Frame.
type Column struct {
	name string
	kind Kind

	// Numeric storage. Valid only when kind == Numeric.
	floats []float64

	// Categorical storage. Valid only when kind == Categorical.
	codes []int32
	dict  []string
	index map[string]int32 // dict value -> code

	// seal caches the column's chunked metadata (per-chunk fingerprints,
	// sketches, validity words — see chunks.go), built lazily under sealMu
	// and shared by every frame holding this column.
	sealMu sync.Mutex
	seal   atomic.Pointer[colSeal]
}

// NewNumericColumn builds a numeric column that takes ownership of values.
func NewNumericColumn(name string, values []float64) *Column {
	return &Column{name: name, kind: Numeric, floats: values}
}

// NewCategoricalColumn builds a categorical column from raw string values.
// Empty strings are stored as regular values; use NULL explicitly via
// AppendNull on a Builder if needed.
func NewCategoricalColumn(name string, values []string) *Column {
	c := &Column{name: name, kind: Categorical, index: make(map[string]int32)}
	c.codes = make([]int32, len(values))
	for i, v := range values {
		c.codes[i] = c.intern(v)
	}
	return c
}

// NewCategoricalColumnFromCodes rebuilds a categorical column from its
// dictionary-encoded representation: the exact codes (-1 = NULL) and the
// exact dictionary, in their original order. NewCategoricalColumn interns
// values in first-occurrence order, so it cannot reproduce an arbitrary
// dictionary layout — but content fingerprints hash codes and dictionary
// as-is, so a column shipped across the wire must be reassembled from this
// constructor to fingerprint identically on both sides.
func NewCategoricalColumnFromCodes(name string, codes []int32, dict []string) (*Column, error) {
	for i, code := range codes {
		if code < -1 || int(code) >= len(dict) {
			return nil, fmt.Errorf("frame: code %d at row %d outside dictionary of %d values", code, i, len(dict))
		}
	}
	c := &Column{name: name, kind: Categorical, codes: codes, dict: dict, index: make(map[string]int32, len(dict))}
	for code, v := range dict {
		if _, dup := c.index[v]; dup {
			return nil, fmt.Errorf("frame: duplicate dictionary value %q", v)
		}
		c.index[v] = int32(code)
	}
	return c, nil
}

func (c *Column) intern(v string) int32 {
	if code, ok := c.index[v]; ok {
		return code
	}
	code := int32(len(c.dict))
	c.dict = append(c.dict, v)
	c.index[v] = code
	return code
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Kind returns the column kind.
func (c *Column) Kind() Kind { return c.kind }

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	if c.kind == Numeric {
		return len(c.floats)
	}
	return len(c.codes)
}

// IsNull reports whether row i holds a NULL.
func (c *Column) IsNull(i int) bool {
	if c.kind == Numeric {
		return math.IsNaN(c.floats[i])
	}
	return c.codes[i] < 0
}

// Float returns the numeric value at row i. It panics on categorical
// columns.
func (c *Column) Float(i int) float64 {
	if c.kind != Numeric {
		panic(fmt.Sprintf("frame: Float on %s column %q", c.kind, c.name))
	}
	return c.floats[i]
}

// Floats returns the backing numeric slice. Callers must not modify it.
// It panics on categorical columns.
func (c *Column) Floats() []float64 {
	if c.kind != Numeric {
		panic(fmt.Sprintf("frame: Floats on %s column %q", c.kind, c.name))
	}
	return c.floats
}

// Str returns the string value at row i, or "" for NULL. It panics on
// numeric columns.
func (c *Column) Str(i int) string {
	code := c.Code(i)
	if code < 0 {
		return ""
	}
	return c.dict[code]
}

// Code returns the dictionary code at row i (-1 for NULL). It panics on
// numeric columns.
func (c *Column) Code(i int) int32 {
	if c.kind != Categorical {
		panic(fmt.Sprintf("frame: Code on %s column %q", c.kind, c.name))
	}
	return c.codes[i]
}

// Codes returns the backing code slice of a categorical column. Callers
// must not modify it.
func (c *Column) Codes() []int32 {
	if c.kind != Categorical {
		panic(fmt.Sprintf("frame: Codes on %s column %q", c.kind, c.name))
	}
	return c.codes
}

// Dict returns the dictionary of a categorical column, indexed by code.
// Callers must not modify it.
func (c *Column) Dict() []string {
	if c.kind != Categorical {
		panic(fmt.Sprintf("frame: Dict on %s column %q", c.kind, c.name))
	}
	return c.dict
}

// Cardinality returns the number of distinct non-NULL values of a
// categorical column.
func (c *Column) Cardinality() int {
	if c.kind != Categorical {
		panic(fmt.Sprintf("frame: Cardinality on %s column %q", c.kind, c.name))
	}
	return len(c.dict)
}

// CodeOf returns the dictionary code for value v, or -1 if v does not occur
// in the column.
func (c *Column) CodeOf(v string) int32 {
	if c.kind != Categorical {
		panic(fmt.Sprintf("frame: CodeOf on %s column %q", c.kind, c.name))
	}
	if code, ok := c.index[v]; ok {
		return code
	}
	return -1
}

// NullCount returns the number of NULL rows. When the column's chunks are
// already sealed the count is read off the merged sketch; otherwise it
// scans.
func (c *Column) NullCount() int {
	if s := c.seal.Load(); s != nil && s.finalized && s.covered() == c.Len() {
		return s.merged.Nulls
	}
	n := 0
	for i := 0; i < c.Len(); i++ {
		if c.IsNull(i) {
			n++
		}
	}
	return n
}

// Value returns the value at row i as an interface: float64, string, or nil
// for NULL.
func (c *Column) Value(i int) any {
	if c.IsNull(i) {
		return nil
	}
	if c.kind == Numeric {
		return c.floats[i]
	}
	return c.dict[c.codes[i]]
}

// Frame is an immutable-by-convention table of columns.
type Frame struct {
	name    string
	cols    []*Column
	byName  map[string]int
	numRows int

	// chunkRows is the chunk capacity of this frame's columns; 0 means
	// DefaultChunkRows. See chunks.go.
	chunkRows int

	// fp caches the content fingerprint; 0 means not yet computed.
	fp atomic.Uint64
}

// New creates a Frame from columns. All columns must have equal length and
// distinct, non-empty names.
func New(name string, cols []*Column) (*Frame, error) {
	f := &Frame{name: name, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c == nil {
			return nil, fmt.Errorf("frame: column %d is nil", i)
		}
		if c.name == "" {
			return nil, fmt.Errorf("frame: column %d has an empty name", i)
		}
		if _, dup := f.byName[c.name]; dup {
			return nil, fmt.Errorf("frame: duplicate column name %q", c.name)
		}
		if i == 0 {
			f.numRows = c.Len()
		} else if c.Len() != f.numRows {
			return nil, fmt.Errorf("frame: column %q has %d rows, want %d", c.name, c.Len(), f.numRows)
		}
		f.byName[c.name] = i
		f.cols = append(f.cols, c)
	}
	return f, nil
}

// NewChunked is New with an explicit chunk capacity: the frame's columns
// seal into chunks of chunkRows rows (rounded up to a multiple of 64;
// non-positive means DefaultChunkRows). Chunking changes metadata layout
// only — cell storage, fingerprints, and characterization results are
// identical for every capacity.
func NewChunked(name string, cols []*Column, chunkRows int) (*Frame, error) {
	f, err := New(name, cols)
	if err != nil {
		return nil, err
	}
	f.chunkRows = normalizeChunkRows(chunkRows)
	return f, nil
}

// MustNew is New but panics on error; intended for tests and generators
// whose schemas are statically correct.
func MustNew(name string, cols []*Column) *Frame {
	f, err := New(name, cols)
	if err != nil {
		panic(err)
	}
	return f
}

// Name returns the frame (table) name.
func (f *Frame) Name() string { return f.name }

// NumRows returns the row count.
func (f *Frame) NumRows() int { return f.numRows }

// NumCols returns the column count.
func (f *Frame) NumCols() int { return len(f.cols) }

// Col returns the i-th column.
func (f *Frame) Col(i int) *Column { return f.cols[i] }

// Columns returns the column slice. Callers must not modify it.
func (f *Frame) Columns() []*Column { return f.cols }

// ColumnNames returns the names of all columns in order.
func (f *Frame) ColumnNames() []string {
	names := make([]string, len(f.cols))
	for i, c := range f.cols {
		names[i] = c.name
	}
	return names
}

// Lookup returns the column with the given name.
func (f *Frame) Lookup(name string) (*Column, bool) {
	i, ok := f.byName[name]
	if !ok {
		return nil, false
	}
	return f.cols[i], true
}

// ColIndex returns the position of the named column, or -1.
func (f *Frame) ColIndex(name string) int {
	if i, ok := f.byName[name]; ok {
		return i
	}
	return -1
}

// NumericColumns returns the indices of all numeric columns.
func (f *Frame) NumericColumns() []int {
	var idx []int
	for i, c := range f.cols {
		if c.kind == Numeric {
			idx = append(idx, i)
		}
	}
	return idx
}

// CategoricalColumns returns the indices of all categorical columns.
func (f *Frame) CategoricalColumns() []int {
	var idx []int
	for i, c := range f.cols {
		if c.kind == Categorical {
			idx = append(idx, i)
		}
	}
	return idx
}

// Select returns a new frame containing only the named columns, sharing the
// underlying storage.
func (f *Frame) Select(names ...string) (*Frame, error) {
	cols := make([]*Column, 0, len(names))
	for _, n := range names {
		c, ok := f.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("frame: unknown column %q in table %q", n, f.name)
		}
		cols = append(cols, c)
	}
	nf, err := New(f.name, cols)
	if err != nil {
		return nil, err
	}
	// The view shares columns, so it keeps the parent's chunk capacity —
	// sealed chunk metadata stays valid and shared.
	nf.chunkRows = f.chunkRows
	return nf, nil
}

// Filter materializes the rows where mask is set into a new frame.
func (f *Frame) Filter(mask *Bitmap) (*Frame, error) {
	if mask.Len() != f.numRows {
		return nil, fmt.Errorf("frame: mask length %d does not match %d rows", mask.Len(), f.numRows)
	}
	out := make([]*Column, len(f.cols))
	n := mask.Count()
	for ci, c := range f.cols {
		switch c.kind {
		case Numeric:
			vals := make([]float64, 0, n)
			mask.ForEach(func(i int) {
				vals = append(vals, c.floats[i])
			})
			out[ci] = NewNumericColumn(c.name, vals)
		case Categorical:
			nc := &Column{name: c.name, kind: Categorical, index: make(map[string]int32)}
			nc.codes = make([]int32, 0, n)
			mask.ForEach(func(i int) {
				if c.codes[i] < 0 {
					nc.codes = append(nc.codes, -1)
				} else {
					nc.codes = append(nc.codes, nc.intern(c.dict[c.codes[i]]))
				}
			})
			out[ci] = nc
		}
	}
	return New(f.name, out)
}

// Head returns a string rendering of the first n rows, for debugging and
// CLI display.
func (f *Frame) Head(n int) string {
	if n > f.numRows {
		n = f.numRows
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d rows × %d cols)\n", f.name, f.numRows, len(f.cols))
	b.WriteString(strings.Join(f.ColumnNames(), "\t"))
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		for j, c := range f.cols {
			if j > 0 {
				b.WriteByte('\t')
			}
			if c.IsNull(i) {
				b.WriteString("NULL")
			} else if c.kind == Numeric {
				fmt.Fprintf(&b, "%g", c.floats[i])
			} else {
				b.WriteString(c.Str(i))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SplitNumeric partitions the non-NULL values of the named numeric column
// into the rows inside the mask (Cᴵ) and outside it (Cᴼ). This is the
// fundamental access pattern of the paper (Figure 2).
func (f *Frame) SplitNumeric(name string, mask *Bitmap) (in, out []float64, err error) {
	c, ok := f.Lookup(name)
	if !ok {
		return nil, nil, fmt.Errorf("frame: unknown column %q", name)
	}
	if c.kind != Numeric {
		return nil, nil, fmt.Errorf("frame: column %q is %s, want numeric", name, c.kind)
	}
	if mask.Len() != f.numRows {
		return nil, nil, fmt.Errorf("frame: mask length %d does not match %d rows", mask.Len(), f.numRows)
	}
	for i, v := range c.floats {
		if math.IsNaN(v) {
			continue
		}
		if mask.Get(i) {
			in = append(in, v)
		} else {
			out = append(out, v)
		}
	}
	return in, out, nil
}

// SplitCodes partitions the non-NULL dictionary codes of the named
// categorical column by the mask.
func (f *Frame) SplitCodes(name string, mask *Bitmap) (in, out []int32, dict []string, err error) {
	c, ok := f.Lookup(name)
	if !ok {
		return nil, nil, nil, fmt.Errorf("frame: unknown column %q", name)
	}
	if c.kind != Categorical {
		return nil, nil, nil, fmt.Errorf("frame: column %q is %s, want categorical", name, c.kind)
	}
	if mask.Len() != f.numRows {
		return nil, nil, nil, fmt.Errorf("frame: mask length %d does not match %d rows", mask.Len(), f.numRows)
	}
	for i, code := range c.codes {
		if code < 0 {
			continue
		}
		if mask.Get(i) {
			in = append(in, code)
		} else {
			out = append(out, code)
		}
	}
	return in, out, c.dict, nil
}

// SortedNumeric returns a sorted copy of the non-NULL values of a numeric
// column; useful for quantile-based queries in examples and generators.
func (f *Frame) SortedNumeric(name string) ([]float64, error) {
	c, ok := f.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("frame: unknown column %q", name)
	}
	if c.kind != Numeric {
		return nil, fmt.Errorf("frame: column %q is %s, want numeric", name, c.kind)
	}
	vals := make([]float64, 0, len(c.floats))
	for _, v := range c.floats {
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	sort.Float64s(vals)
	return vals, nil
}
