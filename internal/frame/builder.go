package frame

import (
	"fmt"
	"math"

	"repro/internal/memo"
	"repro/internal/stats"
)

// Builder assembles a Frame row by row or column by column. It is the
// write-side companion of the read-only Frame and is used by the CSV reader
// and the synthetic data generators.
//
// With SetChunkRows, the builder seals chunks as their rows arrive: every
// time a column fills a chunk, its fingerprint chain, stats sketch, and
// validity words are computed immediately and carried into the built frame,
// so a streaming loader emits sealed chunks as it goes and Build hands the
// frame its chunk metadata instead of deferring a whole-table scan to the
// first fingerprint.
type Builder struct {
	name      string
	cols      []*colBuilder
	chunkRows int
}

type colBuilder struct {
	name   string
	kind   Kind
	floats []float64

	// Categorical cells are dictionary-encoded on arrival (code -1 = NULL),
	// so a builder holds one dictionary instead of every raw string.
	codes []int32
	dict  []string
	index map[string]int32

	// sealed holds the chunks sealed so far in streaming mode; chunkRows
	// rows each, metadata identical to what a lazy whole-column seal would
	// compute (chains and sketches are prefix-resumable, so order of
	// sealing cannot change them).
	sealed []chunkMeta
}

// NewBuilder creates a Builder for a table with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// SetChunkRows sets the chunk capacity of the built frame (rounded up to a
// multiple of 64; non-positive selects DefaultChunkRows) and switches the
// builder to streaming mode: chunks seal as their last row arrives. It must
// be called before the first row is appended.
func (b *Builder) SetChunkRows(n int) {
	for _, cb := range b.cols {
		if cb.len() > 0 {
			panic("frame: SetChunkRows after rows were appended")
		}
	}
	b.chunkRows = normalizeChunkRows(n)
}

// AddNumeric declares a numeric column and returns its index.
func (b *Builder) AddNumeric(name string) int {
	b.cols = append(b.cols, &colBuilder{name: name, kind: Numeric})
	return len(b.cols) - 1
}

// AddCategorical declares a categorical column and returns its index.
func (b *Builder) AddCategorical(name string) int {
	b.cols = append(b.cols, &colBuilder{name: name, kind: Categorical, index: make(map[string]int32)})
	return len(b.cols) - 1
}

// NumCols returns the number of declared columns.
func (b *Builder) NumCols() int { return len(b.cols) }

// NumRows returns the number of rows appended to the first column (the
// builder's row count once columns advance in lockstep, as AppendRows
// guarantees).
func (b *Builder) NumRows() int {
	if len(b.cols) == 0 {
		return 0
	}
	return b.cols[0].len()
}

func (cb *colBuilder) len() int {
	if cb.kind == Numeric {
		return len(cb.floats)
	}
	return len(cb.codes)
}

// AppendFloat appends a value to the numeric column at index col.
func (b *Builder) AppendFloat(col int, v float64) {
	cb := b.cols[col]
	if cb.kind != Numeric {
		panic(fmt.Sprintf("frame: AppendFloat on %s column %q", cb.kind, cb.name))
	}
	cb.floats = append(cb.floats, v)
	b.maybeSeal(cb)
}

// AppendStr appends a value to the categorical column at index col.
func (b *Builder) AppendStr(col int, v string) {
	cb := b.cols[col]
	if cb.kind != Categorical {
		panic(fmt.Sprintf("frame: AppendStr on %s column %q", cb.kind, cb.name))
	}
	cb.codes = append(cb.codes, cb.intern(v))
	b.maybeSeal(cb)
}

// AppendNull appends a NULL to the column at index col.
func (b *Builder) AppendNull(col int) {
	cb := b.cols[col]
	switch cb.kind {
	case Numeric:
		cb.floats = append(cb.floats, math.NaN())
	case Categorical:
		cb.codes = append(cb.codes, -1)
	}
	b.maybeSeal(cb)
}

func (cb *colBuilder) intern(v string) int32 {
	if code, ok := cb.index[v]; ok {
		return code
	}
	code := int32(len(cb.dict))
	cb.dict = append(cb.dict, v)
	cb.index[v] = code
	return code
}

// AppendRows appends whole rows: each row must have one value per declared
// column — float64 (or any integer type), string, or nil for NULL, matching
// the column kind. The row is validated before anything is appended, so a
// rejected row leaves the builder unchanged.
func (b *Builder) AppendRows(rows [][]any) error {
	for r, row := range rows {
		if len(row) != len(b.cols) {
			return fmt.Errorf("frame: row %d has %d values, want %d columns", r, len(row), len(b.cols))
		}
		for i, v := range row {
			if v == nil {
				continue
			}
			cb := b.cols[i]
			switch v.(type) {
			case float64, float32, int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64:
				if cb.kind != Numeric {
					return fmt.Errorf("frame: row %d: numeric value %v for %s column %q", r, v, cb.kind, cb.name)
				}
			case string:
				if cb.kind != Categorical {
					return fmt.Errorf("frame: row %d: string value %q for %s column %q", r, v, cb.kind, cb.name)
				}
			default:
				return fmt.Errorf("frame: row %d: unsupported value %T for column %q", r, v, cb.name)
			}
		}
		for i, v := range row {
			if v == nil {
				b.AppendNull(i)
				continue
			}
			switch x := v.(type) {
			case float64:
				b.AppendFloat(i, x)
			case float32:
				b.AppendFloat(i, float64(x))
			case int:
				b.AppendFloat(i, float64(x))
			case int8:
				b.AppendFloat(i, float64(x))
			case int16:
				b.AppendFloat(i, float64(x))
			case int32:
				b.AppendFloat(i, float64(x))
			case int64:
				b.AppendFloat(i, float64(x))
			case uint:
				b.AppendFloat(i, float64(x))
			case uint8:
				b.AppendFloat(i, float64(x))
			case uint16:
				b.AppendFloat(i, float64(x))
			case uint32:
				b.AppendFloat(i, float64(x))
			case uint64:
				b.AppendFloat(i, float64(x))
			case string:
				b.AppendStr(i, x)
			}
		}
	}
	return nil
}

// maybeSeal seals cb's just-filled chunk in streaming mode.
func (b *Builder) maybeSeal(cb *colBuilder) {
	if b.chunkRows == 0 {
		return
	}
	n := cb.len()
	if n == 0 || n%b.chunkRows != 0 {
		return
	}
	chain := uint64(memo.NewHasher())
	var prev stats.ChunkSketch
	if len(cb.sealed) > 0 {
		last := cb.sealed[len(cb.sealed)-1]
		chain, prev = last.chain, last.sketch
	}
	// A transient Column view over the builder's storage; the metadata is
	// value-based, so it survives Build's copy into exact-capacity arrays.
	view := &Column{name: cb.name, kind: cb.kind, floats: cb.floats, codes: cb.codes, dict: cb.dict}
	cb.sealed = append(cb.sealed, view.sealOneChunk(n-b.chunkRows, n, chain, prev))
	chunkScans.Add(1)
}

// Build validates column lengths and returns the finished Frame. In
// streaming mode the frame carries the builder's chunk capacity and every
// chunk sealed so far; only the trailing partial chunk remains to scan.
func (b *Builder) Build() (*Frame, error) {
	cols := make([]*Column, 0, len(b.cols))
	for _, cb := range b.cols {
		var c *Column
		switch cb.kind {
		case Numeric:
			vals := make([]float64, len(cb.floats))
			copy(vals, cb.floats)
			c = NewNumericColumn(cb.name, vals)
		case Categorical:
			c = &Column{name: cb.name, kind: Categorical, index: make(map[string]int32, len(cb.dict))}
			c.codes = make([]int32, len(cb.codes))
			copy(c.codes, cb.codes)
			c.dict = append([]string(nil), cb.dict...)
			for code, v := range c.dict {
				c.index[v] = int32(code)
			}
		}
		if len(cb.sealed) > 0 {
			c.seal.Store(&colSeal{chunkRows: b.chunkRows, chunks: cb.sealed[:len(cb.sealed):len(cb.sealed)]})
		}
		cols = append(cols, c)
	}
	if b.chunkRows > 0 {
		return NewChunked(b.name, cols, b.chunkRows)
	}
	return New(b.name, cols)
}

// MustBuild is Build but panics on error.
func (b *Builder) MustBuild() *Frame {
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	return f
}
