package frame

import (
	"fmt"
	"math"
)

// Builder assembles a Frame row by row or column by column. It is the
// write-side companion of the read-only Frame and is used by the CSV reader
// and the synthetic data generators.
type Builder struct {
	name string
	cols []*colBuilder
}

type colBuilder struct {
	name   string
	kind   Kind
	floats []float64
	strs   []string
	nulls  []bool
}

// NewBuilder creates a Builder for a table with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// AddNumeric declares a numeric column and returns its index.
func (b *Builder) AddNumeric(name string) int {
	b.cols = append(b.cols, &colBuilder{name: name, kind: Numeric})
	return len(b.cols) - 1
}

// AddCategorical declares a categorical column and returns its index.
func (b *Builder) AddCategorical(name string) int {
	b.cols = append(b.cols, &colBuilder{name: name, kind: Categorical})
	return len(b.cols) - 1
}

// NumCols returns the number of declared columns.
func (b *Builder) NumCols() int { return len(b.cols) }

// AppendFloat appends a value to the numeric column at index col.
func (b *Builder) AppendFloat(col int, v float64) {
	cb := b.cols[col]
	if cb.kind != Numeric {
		panic(fmt.Sprintf("frame: AppendFloat on %s column %q", cb.kind, cb.name))
	}
	cb.floats = append(cb.floats, v)
	cb.nulls = append(cb.nulls, math.IsNaN(v))
}

// AppendStr appends a value to the categorical column at index col.
func (b *Builder) AppendStr(col int, v string) {
	cb := b.cols[col]
	if cb.kind != Categorical {
		panic(fmt.Sprintf("frame: AppendStr on %s column %q", cb.kind, cb.name))
	}
	cb.strs = append(cb.strs, v)
	cb.nulls = append(cb.nulls, false)
}

// AppendNull appends a NULL to the column at index col.
func (b *Builder) AppendNull(col int) {
	cb := b.cols[col]
	switch cb.kind {
	case Numeric:
		cb.floats = append(cb.floats, math.NaN())
	case Categorical:
		cb.strs = append(cb.strs, "")
	}
	cb.nulls = append(cb.nulls, true)
}

// Build validates column lengths and returns the finished Frame.
func (b *Builder) Build() (*Frame, error) {
	cols := make([]*Column, 0, len(b.cols))
	for _, cb := range b.cols {
		switch cb.kind {
		case Numeric:
			vals := make([]float64, len(cb.floats))
			copy(vals, cb.floats)
			cols = append(cols, NewNumericColumn(cb.name, vals))
		case Categorical:
			c := &Column{name: cb.name, kind: Categorical, index: make(map[string]int32)}
			c.codes = make([]int32, len(cb.strs))
			for i, s := range cb.strs {
				if cb.nulls[i] {
					c.codes[i] = -1
				} else {
					c.codes[i] = c.intern(s)
				}
			}
			cols = append(cols, c)
		}
	}
	return New(b.name, cols)
}

// MustBuild is Build but panics on error.
func (b *Builder) MustBuild() *Frame {
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	return f
}
