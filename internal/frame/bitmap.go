package frame

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Bitmap is a fixed-length bitset over row indices. It is the selection
// vector produced by the SQL layer and consumed by the Ziggy engine to split
// columns into inside/outside parts.
type Bitmap struct {
	words []uint64
	n     int
	// fp caches the content fingerprint (0 = not computed) and gen counts
	// mutation events. Every mutating method calls invalidate both before
	// and after touching words, and Fingerprint only keeps a published hash
	// if gen did not advance around the computation, so a mutation racing an
	// in-flight Fingerprint can never leave a stale hash cached. See
	// fingerprint.go.
	fp  atomic.Uint64
	gen atomic.Uint64
}

// invalidate drops the cached fingerprint and records a mutation event.
// Mutators call it on both sides of the word write: the leading call keeps
// sequential readers from seeing a pre-mutation hash, the trailing call
// advances gen past any hash computed while the words were changing (and
// its fp.Store(0) clears one that was already published). The gen bump
// precedes the fp clear so Fingerprint's post-publish recheck pairs with it.
func (b *Bitmap) invalidate() {
	b.gen.Add(1)
	b.fp.Store(0)
}

// NewBitmap returns an all-clear bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		panic("frame: negative bitmap length")
	}
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// BitmapFromBools builds a bitmap from a boolean slice.
func BitmapFromBools(vals []bool) *Bitmap {
	b := NewBitmap(len(vals))
	for i, v := range vals {
		if v {
			b.Set(i)
		}
	}
	return b
}

// BitmapFromIndices builds a bitmap over n rows with the given indices set.
func BitmapFromIndices(n int, idx []int) *Bitmap {
	b := NewBitmap(n)
	for _, i := range idx {
		b.Set(i)
	}
	return b
}

// Len returns the number of rows the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

func (b *Bitmap) checkIndex(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("frame: bitmap index %d out of range [0,%d)", i, b.n))
	}
}

// Set marks row i as selected.
func (b *Bitmap) Set(i int) {
	b.checkIndex(i)
	b.invalidate()
	b.words[i>>6] |= 1 << (uint(i) & 63)
	b.invalidate()
}

// Clear unmarks row i.
func (b *Bitmap) Clear(i int) {
	b.checkIndex(i)
	b.invalidate()
	b.words[i>>6] &^= 1 << (uint(i) & 63)
	b.invalidate()
}

// Get reports whether row i is selected.
func (b *Bitmap) Get(i int) bool {
	b.checkIndex(i)
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of selected rows.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// SetAll selects every row.
func (b *Bitmap) SetAll() {
	b.invalidate()
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
	b.invalidate()
}

// trim clears the unused high bits of the last word so Count and Not stay
// correct.
func (b *Bitmap) trim() {
	if rem := uint(b.n) & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// Clone returns a deep copy, carrying over the cached fingerprint (the
// contents are identical, so the hash is too).
func (b *Bitmap) Clone() *Bitmap {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	nb := &Bitmap{words: w, n: b.n}
	nb.fp.Store(b.fp.Load())
	return nb
}

func (b *Bitmap) checkSame(o *Bitmap) {
	if b.n != o.n {
		panic(fmt.Sprintf("frame: bitmap length mismatch %d vs %d", b.n, o.n))
	}
}

// And intersects b with o in place and returns b.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	b.checkSame(o)
	b.invalidate()
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
	b.invalidate()
	return b
}

// Or unions b with o in place and returns b.
func (b *Bitmap) Or(o *Bitmap) *Bitmap {
	b.checkSame(o)
	b.invalidate()
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
	b.invalidate()
	return b
}

// AndNot removes o's rows from b in place and returns b.
func (b *Bitmap) AndNot(o *Bitmap) *Bitmap {
	b.checkSame(o)
	b.invalidate()
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
	b.invalidate()
	return b
}

// Not complements b in place and returns b.
func (b *Bitmap) Not() *Bitmap {
	b.invalidate()
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.trim()
	b.invalidate()
	return b
}

// Words returns a copy of the backing 64-bit words (row i lives at bit i&63
// of word i>>6; unused high bits of the last word are zero). Together with
// BitmapFromWords it is the exact wire representation of a selection: the
// remote serving layer round-trips bitmaps through it without touching the
// per-row API, and the reconstructed bitmap fingerprints identically.
func (b *Bitmap) Words() []uint64 {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return w
}

// WordCount returns the number of backing words.
func (b *Bitmap) WordCount() int { return len(b.words) }

// WordAt returns backing word i without copying (row r lives at bit r&63
// of word r>>6; unused high bits of the last word are zero). Hot loops —
// the engine's column splits, the dependency matrix's complete-case
// gathers — iterate selection words directly with bits.TrailingZeros64
// instead of calling Get per row. The caller must not mutate the bitmap
// while iterating.
func (b *Bitmap) WordAt(i int) uint64 { return b.words[i] }

// BitmapFromWords rebuilds a bitmap over n rows from its Words
// representation. The word count must match exactly; set bits beyond n are
// rejected rather than trimmed, so a corrupted wire payload cannot silently
// change the selection it decodes to.
func BitmapFromWords(n int, words []uint64) (*Bitmap, error) {
	if n < 0 {
		return nil, fmt.Errorf("frame: negative bitmap length %d", n)
	}
	if want := (n + 63) / 64; len(words) != want {
		return nil, fmt.Errorf("frame: bitmap over %d rows needs %d words, got %d", n, want, len(words))
	}
	if rem := uint(n) & 63; rem != 0 && words[len(words)-1]&^((1<<rem)-1) != 0 {
		return nil, fmt.Errorf("frame: bitmap words have bits set beyond row %d", n)
	}
	w := make([]uint64, len(words))
	copy(w, words)
	return &Bitmap{words: w, n: n}, nil
}

// ForEach calls fn for every selected row index in ascending order.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + tz)
			w &= w - 1
		}
	}
}

// Indices returns the selected row indices in ascending order.
func (b *Bitmap) Indices() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Equal reports whether b and o select exactly the same rows.
func (b *Bitmap) Equal(o *Bitmap) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// String renders a short diagnostic form.
func (b *Bitmap) String() string {
	return fmt.Sprintf("Bitmap(%d/%d)", b.Count(), b.n)
}
