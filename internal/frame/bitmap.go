package frame

import (
	"fmt"
	"math/bits"
)

// Bitmap is a fixed-length bitset over row indices. It is the selection
// vector produced by the SQL layer and consumed by the Ziggy engine to split
// columns into inside/outside parts.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an all-clear bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		panic("frame: negative bitmap length")
	}
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// BitmapFromBools builds a bitmap from a boolean slice.
func BitmapFromBools(vals []bool) *Bitmap {
	b := NewBitmap(len(vals))
	for i, v := range vals {
		if v {
			b.Set(i)
		}
	}
	return b
}

// BitmapFromIndices builds a bitmap over n rows with the given indices set.
func BitmapFromIndices(n int, idx []int) *Bitmap {
	b := NewBitmap(n)
	for _, i := range idx {
		b.Set(i)
	}
	return b
}

// Len returns the number of rows the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

func (b *Bitmap) checkIndex(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("frame: bitmap index %d out of range [0,%d)", i, b.n))
	}
}

// Set marks row i as selected.
func (b *Bitmap) Set(i int) {
	b.checkIndex(i)
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear unmarks row i.
func (b *Bitmap) Clear(i int) {
	b.checkIndex(i)
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports whether row i is selected.
func (b *Bitmap) Get(i int) bool {
	b.checkIndex(i)
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of selected rows.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// SetAll selects every row.
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// trim clears the unused high bits of the last word so Count and Not stay
// correct.
func (b *Bitmap) trim() {
	if rem := uint(b.n) & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitmap{words: w, n: b.n}
}

func (b *Bitmap) checkSame(o *Bitmap) {
	if b.n != o.n {
		panic(fmt.Sprintf("frame: bitmap length mismatch %d vs %d", b.n, o.n))
	}
}

// And intersects b with o in place and returns b.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	b.checkSame(o)
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
	return b
}

// Or unions b with o in place and returns b.
func (b *Bitmap) Or(o *Bitmap) *Bitmap {
	b.checkSame(o)
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
	return b
}

// AndNot removes o's rows from b in place and returns b.
func (b *Bitmap) AndNot(o *Bitmap) *Bitmap {
	b.checkSame(o)
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
	return b
}

// Not complements b in place and returns b.
func (b *Bitmap) Not() *Bitmap {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.trim()
	return b
}

// ForEach calls fn for every selected row index in ascending order.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + tz)
			w &= w - 1
		}
	}
}

// Indices returns the selected row indices in ascending order.
func (b *Bitmap) Indices() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Equal reports whether b and o select exactly the same rows.
func (b *Bitmap) Equal(o *Bitmap) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// String renders a short diagnostic form.
func (b *Bitmap) String() string {
	return fmt.Sprintf("Bitmap(%d/%d)", b.Count(), b.n)
}
