package frame

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/memo"
	"repro/internal/stats"
)

// Chunked columns. A column's rows are carved into fixed-capacity chunks;
// each sealed chunk carries a fingerprint (the column's FNV-1a payload hash
// chain snapshotted at the chunk's end), a mergeable stats sketch
// (stats.ChunkSketch, with prefix-chained moments), and the chunk's slice of
// the validity bitmap. Because every per-chunk quantity is either a prefix
// of a flat left-to-right scan (hash chain, moments) or chunk-local with an
// exact merge (counts, extrema, validity words aligned to 64-row
// boundaries), the seal of a column is a pure function of its cells — the
// same for every chunk layout — and Append can transplant the full-chunk
// prefix of a base column and scan only the rows past the last full chunk
// boundary. Storage stays contiguous: chunks are metadata over the one
// backing array, so kernels, splits, and codecs read columns exactly as
// before.
//
// Seals are cached on the Column (not the Frame) so frames that share
// columns — Select views, appended descendants — share the work.

// DefaultChunkRows is the chunk capacity used when a frame does not choose
// one. It is a multiple of 64 so full-chunk validity bitmaps concatenate
// word-exactly.
const DefaultChunkRows = 4096

// normalizeChunkRows maps a requested chunk capacity into the valid domain:
// non-positive means DefaultChunkRows, anything else is rounded up to the
// next multiple of 64 (validity words must not straddle chunk boundaries).
func normalizeChunkRows(n int) int {
	if n <= 0 {
		return DefaultChunkRows
	}
	if r := n % 64; r != 0 {
		n += 64 - r
	}
	return n
}

// chunkScans counts chunk seal scans process-wide, in the style of
// stats.RankOps: it only ever grows, and tests assert deltas around an
// operation to pin how much column data an append or a cold load actually
// re-read.
var chunkScans atomic.Int64

// ChunkScans returns the process-wide number of chunk scans performed so
// far. Each sealed chunk costs exactly one scan of its rows; a cold seal of
// a k-chunk column reports k, and an append that reuses the base column's
// full chunks reports only the chunks past the last full boundary.
func ChunkScans() int64 { return chunkScans.Load() }

// chunkMeta is one sealed chunk of one column.
type chunkMeta struct {
	// end is the exclusive row index of the chunk's end; its start is the
	// previous chunk's end (0 for the first).
	end int
	// chain is the raw FNV-1a state of the column's payload hash chain
	// after folding every cell through end — resumable by the next chunk,
	// and layout-independent at any given row index.
	chain uint64
	// sketch carries the chunk's mergeable statistics (prefix moments).
	sketch stats.ChunkSketch
	// valid is the chunk's slice of the non-NULL bitmap, one bit per row in
	// chunk order. Full chunks hold exactly chunkRows/64 words.
	valid []uint64
}

// colSeal is the sealed view of one column under one chunk capacity.
type colSeal struct {
	chunkRows int
	chunks    []chunkMeta
	// finalized reports that chunks cover every row AND the merged view
	// below was computed. Seals seeded by Append or a streaming Builder are
	// stored unfinalized (a chunk prefix only) and complete on first use —
	// coverage alone cannot distinguish a boundary-aligned prefix from a
	// finished seal.
	finalized bool
	// merged is the fold of all chunk sketches: exact totals, extrema, and
	// the flat-scan-identical running moments.
	merged stats.ColumnSketch
	// valid is the whole-column non-NULL bitmap, the concatenation of the
	// per-chunk words — bit-identical to a flat scan because chunk
	// capacities are multiples of 64.
	valid []uint64
}

// covered returns the number of rows the seal accounts for.
func (s *colSeal) covered() int {
	if len(s.chunks) == 0 {
		return 0
	}
	return s.chunks[len(s.chunks)-1].end
}

// chainEnd returns the raw payload hash-chain state after the last sealed
// row (the FNV offset basis for an empty column).
func (s *colSeal) chainEnd() uint64 {
	if len(s.chunks) == 0 {
		return uint64(memo.NewHasher())
	}
	return s.chunks[len(s.chunks)-1].chain
}

// sealChunks returns the column's seal under the given chunk capacity,
// computing or extending it if needed. A cached seal with the same capacity
// is extended in place-of: chunks it already sealed are reused and only rows
// past its coverage are scanned — this is how an appended column, seeded
// with its base's full-chunk prefix, seals by scanning only the new rows.
func (c *Column) sealChunks(chunkRows int) *colSeal {
	chunkRows = normalizeChunkRows(chunkRows)
	if s := c.seal.Load(); s != nil && s.chunkRows == chunkRows && s.finalized && s.covered() == c.Len() {
		return s
	}
	c.sealMu.Lock()
	defer c.sealMu.Unlock()
	s := c.seal.Load()
	if s != nil && s.chunkRows == chunkRows && s.finalized && s.covered() == c.Len() {
		return s
	}
	var prefix []chunkMeta
	if s != nil && s.chunkRows == chunkRows {
		prefix = s.chunks
	}
	ns := c.buildSeal(chunkRows, prefix)
	c.seal.Store(ns)
	return ns
}

// buildSeal seals the column's chunks from the end of prefix (which must be
// boundary-aligned sealed chunks of this column's cells under the same
// capacity) through the last row, then merges.
func (c *Column) buildSeal(chunkRows int, prefix []chunkMeta) *colSeal {
	n := c.Len()
	s := &colSeal{chunkRows: chunkRows}
	s.chunks = append([]chunkMeta(nil), prefix...)
	start := 0
	chain := uint64(memo.NewHasher())
	var prev stats.ChunkSketch
	if len(prefix) > 0 {
		last := prefix[len(prefix)-1]
		start, chain, prev = last.end, last.chain, last.sketch
	}
	for start < n {
		end := start + chunkRows
		if end > n {
			end = n
		}
		cm := c.sealOneChunk(start, end, chain, prev)
		s.chunks = append(s.chunks, cm)
		chain, prev = cm.chain, cm.sketch
		start = end
		chunkScans.Add(1)
	}
	sketches := make([]stats.ChunkSketch, len(s.chunks))
	words := 0
	for i, cm := range s.chunks {
		sketches[i] = cm.sketch
		words += len(cm.valid)
	}
	s.merged = stats.MergeSketches(sketches, c.kind == Categorical)
	s.valid = make([]uint64, 0, words)
	for _, cm := range s.chunks {
		s.valid = append(s.valid, cm.valid...)
	}
	s.finalized = true
	return s
}

// sealOneChunk scans rows [start, end): it extends the payload hash chain,
// seals the chunk sketch from the previous chunk's prefix state, and builds
// the chunk's validity words.
func (c *Column) sealOneChunk(start, end int, chain uint64, prev stats.ChunkSketch) chunkMeta {
	cm := chunkMeta{end: end, valid: make([]uint64, (end-start+63)/64)}
	h := memo.Hasher(chain)
	switch c.kind {
	case Numeric:
		vals := c.floats[start:end]
		for i, v := range vals {
			h.Uint64(math.Float64bits(v))
			if !math.IsNaN(v) {
				cm.valid[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		cm.sketch = stats.SketchNumericChunk(prev, vals)
	case Categorical:
		codes := c.codes[start:end]
		for i, code := range codes {
			h.Uint32(uint32(code))
			if code >= 0 {
				cm.valid[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		cm.sketch = stats.SketchCategoricalChunk(prev, codes, len(c.dict))
	}
	cm.chain = uint64(h)
	return cm
}

// ChunkRows returns the frame's chunk capacity (DefaultChunkRows when the
// frame never chose one).
func (f *Frame) ChunkRows() int { return normalizeChunkRows(f.chunkRows) }

// NumChunks returns the number of chunks each column carves into under the
// frame's chunk capacity (0 for an empty frame).
func (f *Frame) NumChunks() int {
	cr := f.ChunkRows()
	return (f.numRows + cr - 1) / cr
}

// ColumnSketch returns the merged statistics sketch of column i, sealing
// its chunks if needed: exact row/NULL counts and extrema, plus running
// moments bit-identical to a flat scan — the preparation stage reads means
// and NULL counts here instead of rescanning cells.
func (f *Frame) ColumnSketch(i int) stats.ColumnSketch {
	return f.cols[i].sealChunks(f.chunkRows).merged
}

// ColumnValidWords returns the non-NULL bitmap words of column i (bit r set
// ⇔ row r is non-NULL), sealing its chunks if needed. Callers must not
// modify the returned slice.
func (f *Frame) ColumnValidWords(i int) []uint64 {
	return f.cols[i].sealChunks(f.chunkRows).valid
}

// ChunkBounds returns the row range [start, end) of chunk j under the
// frame's chunk capacity. Chunk starts are always multiples of the capacity
// (itself a multiple of 64), so per-chunk validity bitmaps are word-aligned.
func (f *Frame) ChunkBounds(j int) (start, end int) {
	cr := f.ChunkRows()
	start = j * cr
	end = start + cr
	if end > f.numRows {
		end = f.numRows
	}
	return start, end
}

// FullChunks returns the number of boundary-complete chunks: the prefix of
// the frame whose per-chunk metadata is final and therefore transplantable.
// It equals NumChunks when the row count is chunk-aligned and NumChunks−1
// when the last chunk is partial.
func (f *Frame) FullChunks() int { return f.numRows / f.ChunkRows() }

// AdoptChunkPrefix seeds every column's seal with the first fullChunks
// sealed chunks of the corresponding base column, the cross-frame form of
// what Append does for its own result: fingerprinting or sealing f
// afterwards scans only the rows past the adopted prefix. The frames must
// share schema and chunk capacity, both must span the prefix, and — because
// chunk chains hash dictionary codes, not strings — a categorical base
// column's dictionary must be a prefix of f's.
//
// The caller is responsible for content: adopting a prefix asserts that
// base's cells over those chunks are identical to f's (verify with
// ChunkFingerprints — chunk j's fingerprint commits to every cell through
// j). Adopting a mismatched prefix yields a frame whose fingerprint and
// sketches describe the base's cells, not f's.
func (f *Frame) AdoptChunkPrefix(base *Frame, fullChunks int) error {
	if fullChunks <= 0 {
		return nil
	}
	cr := f.ChunkRows()
	if base.ChunkRows() != cr {
		return fmt.Errorf("frame: adopt prefix: chunk capacity %d, base has %d", cr, base.ChunkRows())
	}
	if len(base.cols) != len(f.cols) {
		return fmt.Errorf("frame: adopt prefix: %d columns, base has %d", len(f.cols), len(base.cols))
	}
	rows := fullChunks * cr
	if rows > f.numRows || rows > base.numRows {
		return fmt.Errorf("frame: adopt prefix: %d chunks (%d rows) exceed %d/%d rows", fullChunks, rows, f.numRows, base.numRows)
	}
	for i, c := range f.cols {
		bc := base.cols[i]
		if bc.name != c.name || bc.kind != c.kind {
			return fmt.Errorf("frame: adopt prefix: column %d is %s %q, base has %s %q",
				i, c.kind, c.name, bc.kind, bc.name)
		}
		if c.kind == Categorical {
			if len(bc.dict) > len(c.dict) {
				return fmt.Errorf("frame: adopt prefix: column %q dictionary shrank from %d to %d values",
					c.name, len(bc.dict), len(c.dict))
			}
			for code, v := range bc.dict {
				if c.dict[code] != v {
					return fmt.Errorf("frame: adopt prefix: column %q dictionary diverges at code %d (%q vs %q)",
						c.name, code, c.dict[code], v)
				}
			}
		}
	}
	for i, c := range f.cols {
		s := base.cols[i].sealChunks(cr)
		if len(s.chunks) < fullChunks || s.chunks[fullChunks-1].end != rows {
			return fmt.Errorf("frame: adopt prefix: column %q base seal covers %d chunks, want %d full",
				c.name, len(s.chunks), fullChunks)
		}
		c.seal.Store(&colSeal{chunkRows: s.chunkRows, chunks: s.chunks[:fullChunks:fullChunks]})
	}
	return nil
}

// ChunkFingerprints returns the sealed fingerprint of every chunk of column
// i, in chunk order. Each is the column's payload hash chain snapshotted at
// that chunk's end, so chunk j's fingerprint commits to the contents of
// chunks 0..j — two columns agreeing on chunk j's fingerprint agree on
// every cell through it.
func (f *Frame) ChunkFingerprints(i int) []uint64 {
	s := f.cols[i].sealChunks(f.chunkRows)
	fps := make([]uint64, len(s.chunks))
	for j, cm := range s.chunks {
		fps[j] = sealFingerprint(cm.chain)
	}
	return fps
}

// Append returns a new frame holding f's rows followed by rows' rows. The
// schemas must match exactly: same column count, names, kinds, and order —
// a mismatch is rejected loudly rather than coerced. An empty rows frame
// returns f itself.
//
// The result shares no backing storage with either input (each column is
// copied into a fresh exact-capacity array, so concurrent appends to the
// same base cannot alias), but it inherits f's sealed full chunks: sealing
// or fingerprinting the result scans only the rows past f's last full chunk
// boundary — at most chunkRows−1 old rows plus the appended ones.
func (f *Frame) Append(rows *Frame) (*Frame, error) {
	if rows.NumCols() != len(f.cols) {
		return nil, fmt.Errorf("frame: append to %q: %d columns, want %d", f.name, rows.NumCols(), len(f.cols))
	}
	for i, base := range f.cols {
		add := rows.cols[i]
		if add.name != base.name || add.kind != base.kind {
			return nil, fmt.Errorf("frame: append to %q: column %d is %s %q, want %s %q",
				f.name, i, add.kind, add.name, base.kind, base.name)
		}
	}
	if rows.numRows == 0 {
		return f, nil
	}
	chunkRows := f.ChunkRows()
	cols := make([]*Column, len(f.cols))
	for i, base := range f.cols {
		add := rows.cols[i]
		switch base.kind {
		case Numeric:
			vals := make([]float64, base.Len()+add.Len())
			copy(vals, base.floats)
			copy(vals[base.Len():], add.floats)
			cols[i] = NewNumericColumn(base.name, vals)
		case Categorical:
			nc := &Column{name: base.name, kind: Categorical, index: make(map[string]int32, len(base.dict))}
			nc.codes = make([]int32, base.Len()+add.Len())
			copy(nc.codes, base.codes)
			nc.dict = append([]string(nil), base.dict...)
			for code, v := range nc.dict {
				nc.index[v] = int32(code)
			}
			for j, code := range add.codes {
				if code < 0 {
					nc.codes[base.Len()+j] = -1
				} else {
					nc.codes[base.Len()+j] = nc.intern(add.dict[code])
				}
			}
			cols[i] = nc
		}
		cols[i].adoptSealPrefix(base, chunkRows)
	}
	nf, err := New(f.name, cols)
	if err != nil {
		return nil, err
	}
	nf.chunkRows = f.chunkRows
	return nf, nil
}

// adoptSealPrefix seeds c's seal with base's sealed full chunks (sealing
// base first if needed — its cells are a prefix of c's, so the chain,
// sketch, and validity metadata carry over verbatim). A trailing partial
// chunk of base is dropped: its sketch histogram and validity words are
// chunk-local and would change once the chunk fills, so its rows rescan.
func (c *Column) adoptSealPrefix(base *Column, chunkRows int) {
	s := base.sealChunks(chunkRows)
	full := len(s.chunks)
	if full > 0 && s.chunks[full-1].end%s.chunkRows != 0 {
		full--
	}
	if full == 0 {
		return
	}
	c.seal.Store(&colSeal{chunkRows: s.chunkRows, chunks: s.chunks[:full:full]})
}
