package frame

import (
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130) // spans three words
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatal("fresh bitmap not empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Get wrong")
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Fatal("Clear wrong")
	}
}

func TestBitmapOutOfRangePanics(t *testing.T) {
	b := NewBitmap(10)
	for _, fn := range []func(){
		func() { b.Set(10) },
		func() { b.Get(-1) },
		func() { b.Clear(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestBitmapNegativeLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBitmap(-1) did not panic")
		}
	}()
	NewBitmap(-1)
}

func TestBitmapSetAllAndNot(t *testing.T) {
	b := NewBitmap(100)
	b.SetAll()
	if b.Count() != 100 {
		t.Fatalf("SetAll count = %d, want 100", b.Count())
	}
	b.Not()
	if b.Count() != 0 {
		t.Fatalf("Not of full = %d set bits, want 0", b.Count())
	}
	b.Not()
	if b.Count() != 100 {
		t.Fatalf("double Not count = %d, want 100", b.Count())
	}
}

func TestBitmapAlgebra(t *testing.T) {
	a := BitmapFromIndices(10, []int{1, 2, 3})
	b := BitmapFromIndices(10, []int{2, 3, 4})

	and := a.Clone().And(b)
	if got := and.Indices(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("And = %v", got)
	}
	or := a.Clone().Or(b)
	if got := or.Indices(); len(got) != 4 {
		t.Fatalf("Or = %v", got)
	}
	diff := a.Clone().AndNot(b)
	if got := diff.Indices(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("AndNot = %v", got)
	}
}

func TestBitmapMismatchedLengthsPanic(t *testing.T) {
	a := NewBitmap(10)
	b := NewBitmap(11)
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	a.And(b)
}

func TestBitmapForEachOrder(t *testing.T) {
	idx := []int{5, 0, 99, 64, 63}
	b := BitmapFromIndices(100, idx)
	got := b.Indices()
	want := []int{0, 5, 63, 64, 99}
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestBitmapFromBools(t *testing.T) {
	b := BitmapFromBools([]bool{true, false, true})
	if b.Len() != 3 || b.Count() != 2 || !b.Get(0) || b.Get(1) || !b.Get(2) {
		t.Fatal("BitmapFromBools wrong")
	}
}

func TestBitmapEqualAndClone(t *testing.T) {
	a := BitmapFromIndices(70, []int{0, 69})
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Set(5)
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	if a.Equal(NewBitmap(71)) {
		t.Fatal("different lengths reported equal")
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

// Property: for any boolean vector, Not(Not(b)) == b, Count(b) + Count(Not b)
// == Len, and And/Or against the complement behave like set algebra.
func TestBitmapProperties(t *testing.T) {
	f := func(vals []bool) bool {
		b := BitmapFromBools(vals)
		n := b.Len()
		comp := b.Clone().Not()
		if b.Count()+comp.Count() != n {
			return false
		}
		if !b.Clone().Not().Not().Equal(b) {
			return false
		}
		if b.Clone().And(comp).Count() != 0 {
			return false
		}
		if b.Clone().Or(comp).Count() != n {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Indices round-trips through BitmapFromIndices.
func TestBitmapIndicesRoundTrip(t *testing.T) {
	f := func(vals []bool) bool {
		b := BitmapFromBools(vals)
		return BitmapFromIndices(b.Len(), b.Indices()).Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBitmapCount(b *testing.B) {
	bm := NewBitmap(1 << 20)
	for i := 0; i < bm.Len(); i += 3 {
		bm.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bm.Count()
	}
}

func BenchmarkBitmapForEach(b *testing.B) {
	bm := NewBitmap(1 << 16)
	for i := 0; i < bm.Len(); i += 7 {
		bm.Set(i)
	}
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		bm.ForEach(func(j int) { sink += j })
	}
	_ = sink
}
