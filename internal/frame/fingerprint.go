package frame

import (
	"repro/internal/memo"
)

// Content fingerprints turn frames and selection bitmaps into cheap value
// keys for the memoization layer (internal/memo): two frames with the same
// schema and cell contents fingerprint identically even when they are
// distinct objects — reloading a CSV or regenerating a synthetic table hits
// the caches a pointer-keyed map would miss. The hash is memo.Hasher
// (FNV-1a) over a canonical serialization (schema, then per-column payload
// chains), chosen for determinism and zero allocation; 64 bits is ample for
// the cache-key population of one process.
//
// Column payloads are hashed as per-column chains snapshotted at chunk
// boundaries (chunks.go): the frame fingerprint folds each column's
// chain-end state, which by construction equals the last chunk fingerprint
// — so the frame fingerprint is derived from the ordered chunk fingerprints
// yet independent of the chunk layout, and an append resumes the chains
// instead of rehashing the rows it kept.

// hashSum finalizes a content hasher. It is a package-level hook so tests
// can force the raw hash to collide with the cache sentinel; production
// code never replaces it.
var hashSum = func(h *memo.Hasher) uint64 { return h.Sum() }

// zeroHashFingerprint is the reserved fingerprint for content whose raw
// hash is 0.
const zeroHashFingerprint = 1

// sealFingerprint maps a raw content hash into the cacheable fingerprint
// domain: 0 — a legitimate 1-in-2⁶⁴ hash output — is remapped to a
// reserved non-zero value so it stays distinguishable from the "not yet
// computed" sentinel. Without the remap such content would rehash on every
// call and a published-then-invalidated 0 would be indistinguishable from
// never having hashed at all.
func sealFingerprint(raw uint64) uint64 {
	if raw == 0 {
		return zeroHashFingerprint
	}
	return raw
}

// Fingerprint returns the content fingerprint of the frame: a hash of the
// schema (column names, kinds, row count) and every cell, computed once and
// cached on the frame. Cell payloads enter through each column's sealed
// chunk chain (chunks.go): the fingerprint folds the chain state after the
// last row — the last chunk's fingerprint — so a frame built by Append
// hashes only the rows past the reused chunk prefix, and the value is
// identical for every chunk layout of the same content. Frames are
// immutable by convention; the fingerprint is not recomputed on its own, so
// code that mutates backing storage in place must either build a new Frame
// or call InvalidateFingerprint afterwards. The table name is deliberately
// excluded: a characterization depends only on the data, so identical
// tables registered under different names share cache entries.
func (f *Frame) Fingerprint() uint64 {
	if v := f.fp.Load(); v != 0 {
		return v
	}
	h := memo.NewHasher()
	h.Uint64(uint64(f.numRows))
	h.Uint64(uint64(len(f.cols)))
	for _, c := range f.cols {
		h.String(c.name)
		h.Uint64(uint64(c.kind))
		h.Uint64(c.sealChunks(f.chunkRows).chainEnd())
		if c.kind == Categorical {
			// The dictionary is outside the chunk chain: it can grow on
			// append (rewriting history a prefix chain cannot absorb), and
			// it is small, so it hashes fresh here.
			h.Uint64(uint64(len(c.dict)))
			for _, s := range c.dict {
				h.String(s)
			}
		}
	}
	v := sealFingerprint(hashSum(&h))
	f.fp.Store(v)
	return v
}

// InvalidateFingerprint clears the cached fingerprint and every column's
// sealed chunk metadata so the next Fingerprint call rehashes the current
// cell contents. Code that mutates a frame's backing storage in place —
// against the immutability convention — must call this (alongside
// Engine.InvalidateCache) before characterizing the frame again; otherwise
// fresh results would be cached under the stale pre-mutation hash and could
// be served to a frame that genuinely has that content. It must not race
// with concurrent readers of the frame.
func (f *Frame) InvalidateFingerprint() {
	f.fp.Store(0)
	for _, c := range f.cols {
		c.seal.Store(nil)
	}
}

// Fingerprint returns the content fingerprint of the bitmap (length and set
// bits), computed once and cached on the bitmap. Bitmaps are mutable, so
// every mutating method (Set, Clear, SetAll, And, Or, AndNot, Not)
// invalidates the cached value and the next call rehashes the current bits —
// the sharded serving layer fingerprints the same selection on every request,
// so the O(rows/64) pass is paid once per distinct content instead of once
// per request.
//
// Callers must not mutate a bitmap while another goroutine fingerprints it
// (the words themselves are not atomic), but the cache is hardened against
// that misuse: mutators bump the generation counter on both sides of the
// word write, a hash is only published when the generation did not advance
// around the computation, and the publish rechecks the generation and
// retracts itself if a mutation slipped in between. A racing mutation can
// therefore produce one transiently wrong return value — as before caching —
// but never a permanently poisoned cache: once mutations quiesce, the next
// call rehashes the true content. Concurrent Fingerprint calls on an
// unchanging bitmap are safe.
func (b *Bitmap) Fingerprint() uint64 {
	gen := b.gen.Load()
	if v := b.fp.Load(); v != 0 {
		return v
	}
	h := memo.NewHasher()
	h.Uint64(uint64(b.n))
	for _, w := range b.words {
		h.Uint64(w)
	}
	v := sealFingerprint(hashSum(&h))
	if b.gen.Load() == gen {
		b.fp.Store(v)
		if b.gen.Load() != gen {
			// A mutation's trailing invalidate may have run between the
			// check and the store; retract the now-doubtful hash. The
			// mutator's gen bump precedes its fp clear, so whenever its
			// clear landed before our store, this recheck sees the bump.
			b.fp.Store(0)
		}
	}
	return v
}
