package frame

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// sketchesMatch compares merged sketches on the fields with exact-merge
// semantics: counts, extrema (NaN-aware), and the bit-exact prefix moments.
// The numeric value histogram is deliberately excluded — its merge re-bins
// per-chunk buckets, which is approximate and layout-dependent by design —
// but categorical histograms (exact per-code sums) must match when
// exactHist is set.
func sketchesMatch(a, b stats.ColumnSketch, exactHist bool) bool {
	feq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if a.Rows != b.Rows || a.Nulls != b.Nulls || a.Count != b.Count {
		return false
	}
	if !feq(a.Min, b.Min) || !feq(a.Max, b.Max) || !feq(a.Sum, b.Sum) || !feq(a.SumSq, b.SumSq) {
		return false
	}
	if exactHist && !reflect.DeepEqual(a.Hist, b.Hist) {
		return false
	}
	return true
}

// buildChunked builds a two-column (numeric + categorical) frame over n rows
// with the given chunk capacity; NULLs every 7th numeric row and every 11th
// categorical row.
func buildChunked(t *testing.T, n, chunkRows int) *Frame {
	t.Helper()
	vals := make([]float64, n)
	strs := make([]string, n)
	for i := range vals {
		vals[i] = float64(i%97) * 1.5
		if i%7 == 3 {
			vals[i] = math.NaN()
		}
		strs[i] = fmt.Sprintf("v%d", i%13)
	}
	num := NewNumericColumn("x", vals)
	cat := NewCategoricalColumn("c", strs)
	for i := 0; i < n; i++ {
		if i%11 == 5 {
			cat.codes[i] = -1
		}
	}
	f, err := NewChunked("t", []*Column{num, cat}, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSealLayoutInvariance(t *testing.T) {
	const n = 333
	base := buildChunked(t, n, 0) // DefaultChunkRows: one chunk
	for _, cr := range []int{64, 128, 256, DefaultChunkRows} {
		f := buildChunked(t, n, cr)
		if got, want := f.Fingerprint(), base.Fingerprint(); got != want {
			t.Errorf("chunkRows=%d: fingerprint %x, want %x", cr, got, want)
		}
		for i := 0; i < f.NumCols(); i++ {
			a, b := f.ColumnSketch(i), base.ColumnSketch(i)
			if !sketchesMatch(a, b, f.Col(i).Kind() == Categorical) {
				t.Errorf("chunkRows=%d col %d: merged sketch %+v, want %+v", cr, i, a, b)
			}
			if !reflect.DeepEqual(f.ColumnValidWords(i), base.ColumnValidWords(i)) {
				t.Errorf("chunkRows=%d col %d: valid words differ from flat layout", cr, i)
			}
		}
	}
}

func TestChunkRowsNormalization(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultChunkRows}, {-5, DefaultChunkRows}, {1, 64}, {64, 64}, {65, 128}, {1000, 1024},
	} {
		if got := normalizeChunkRows(tc.in); got != tc.want {
			t.Errorf("normalizeChunkRows(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestChunkFingerprintsArePrefixCommitments(t *testing.T) {
	short := buildChunked(t, 128, 64)
	long := buildChunked(t, 256, 64) // same generator: first 128 rows identical
	for i := 0; i < short.NumCols(); i++ {
		sfp, lfp := short.ChunkFingerprints(i), long.ChunkFingerprints(i)
		if len(sfp) != 2 || len(lfp) != 4 {
			t.Fatalf("col %d: chunk counts %d/%d, want 2/4", i, len(sfp), len(lfp))
		}
		for j := range sfp {
			if sfp[j] != lfp[j] {
				t.Errorf("col %d chunk %d: fingerprint %x, want shared prefix %x", i, j, lfp[j], sfp[j])
			}
		}
		if lfp[2] == lfp[3] || lfp[0] == lfp[1] {
			t.Errorf("col %d: consecutive chunk fingerprints collide", i)
		}
	}
}

func TestNumChunks(t *testing.T) {
	f := buildChunked(t, 150, 64)
	if got := f.NumChunks(); got != 3 {
		t.Errorf("NumChunks = %d, want 3", got)
	}
	if got := f.ChunkRows(); got != 64 {
		t.Errorf("ChunkRows = %d, want 64", got)
	}
	empty := MustNew("e", nil)
	if got := empty.NumChunks(); got != 0 {
		t.Errorf("empty NumChunks = %d, want 0", got)
	}
}

func TestAppendEquivalentToWholeBuild(t *testing.T) {
	whole := buildChunked(t, 300, 64)
	base := buildChunked(t, 190, 64)
	extra := buildChunked(t, 300, 64)
	// Carve the tail rows [190, 300) via Filter to get an independent frame
	// with the same cells.
	mask := NewBitmap(300)
	for i := 190; i < 300; i++ {
		mask.Set(i)
	}
	tail, err := extra.Filter(mask)
	if err != nil {
		t.Fatal(err)
	}
	got, err := base.Append(tail)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != whole.NumRows() {
		t.Fatalf("appended rows = %d, want %d", got.NumRows(), whole.NumRows())
	}
	if got.Fingerprint() != whole.Fingerprint() {
		t.Errorf("appended fingerprint %x, want %x", got.Fingerprint(), whole.Fingerprint())
	}
	for i := 0; i < whole.NumCols(); i++ {
		if !sketchesMatch(got.ColumnSketch(i), whole.ColumnSketch(i), whole.Col(i).Kind() == Categorical) {
			t.Errorf("col %d: appended sketch %+v, want %+v", i, got.ColumnSketch(i), whole.ColumnSketch(i))
		}
		if !reflect.DeepEqual(got.ColumnValidWords(i), whole.ColumnValidWords(i)) {
			t.Errorf("col %d: appended valid words differ", i)
		}
		for r := 0; r < whole.NumRows(); r++ {
			if !reflect.DeepEqual(got.Col(i).Value(r), whole.Col(i).Value(r)) {
				t.Fatalf("col %d row %d: %v, want %v", i, r, got.Col(i).Value(r), whole.Col(i).Value(r))
			}
		}
	}
}

func TestAppendScansOnlyNewChunks(t *testing.T) {
	base := buildChunked(t, 256, 64) // 4 full chunks per column
	base.Fingerprint()               // seal: 4 scans × 2 cols
	tail := buildChunked(t, 64, 64)
	before := ChunkScans()
	appended, err := base.Append(tail)
	if err != nil {
		t.Fatal(err)
	}
	appended.Fingerprint()
	if delta := ChunkScans() - before; delta != 2 {
		t.Errorf("append+seal scanned %d chunks, want 2 (one new chunk per column)", delta)
	}

	// A base with a trailing partial chunk rescans that partial plus the new
	// rows — never the full prefix.
	base2 := buildChunked(t, 200, 64) // chunks end at 64,128,192,200
	base2.Fingerprint()
	before = ChunkScans()
	appended2, err := base2.Append(tail) // 264 rows: reseal covers [192,264) = 2 chunks/col
	if err != nil {
		t.Fatal(err)
	}
	appended2.Fingerprint()
	if delta := ChunkScans() - before; delta != 4 {
		t.Errorf("append over partial chunk scanned %d chunks, want 4 (two per column)", delta)
	}
}

func TestAppendRejectsSchemaMismatch(t *testing.T) {
	base := buildChunked(t, 64, 64)
	for name, bad := range map[string]*Frame{
		"column count":  MustNew("t", []*Column{NewNumericColumn("x", []float64{1})}),
		"column name":   MustNew("t", []*Column{NewNumericColumn("y", []float64{1}), NewCategoricalColumn("c", []string{"a"})}),
		"column kind":   MustNew("t", []*Column{NewCategoricalColumn("x", []string{"a"}), NewCategoricalColumn("c", []string{"a"})}),
		"swapped order": MustNew("t", []*Column{NewCategoricalColumn("c", []string{"a"}), NewNumericColumn("x", []float64{1})}),
	} {
		if _, err := base.Append(bad); err == nil {
			t.Errorf("append with mismatched %s: no error", name)
		}
	}
}

func TestAppendEmptyReturnsSame(t *testing.T) {
	base := buildChunked(t, 64, 64)
	empty := MustNew("t", []*Column{NewNumericColumn("x", nil), NewCategoricalColumn("c", nil)})
	got, err := base.Append(empty)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Error("empty append built a new frame")
	}
}

func TestAppendDoesNotAliasBase(t *testing.T) {
	base := buildChunked(t, 100, 64)
	t1 := buildChunked(t, 30, 64)
	t2 := buildChunked(t, 50, 64)
	a, err := base.Append(t1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := base.Append(t2)
	if err != nil {
		t.Fatal(err)
	}
	// Diamond appends: both descendants must keep their own tails intact.
	for r := 0; r < 30; r++ {
		if a.Col(0).Float(100+r) != t1.Col(0).Float(r) && !(math.IsNaN(a.Col(0).Float(100+r)) && math.IsNaN(t1.Col(0).Float(r))) {
			t.Fatalf("first append clobbered at row %d", 100+r)
		}
	}
	for r := 0; r < 50; r++ {
		if b.Col(0).Float(100+r) != t2.Col(0).Float(r) && !(math.IsNaN(b.Col(0).Float(100+r)) && math.IsNaN(t2.Col(0).Float(r))) {
			t.Fatalf("second append clobbered at row %d", 100+r)
		}
	}
}

func TestAppendGrowsDictionary(t *testing.T) {
	base := MustNew("t", []*Column{NewCategoricalColumn("c", []string{"a", "b", "a"})})
	tail := MustNew("t", []*Column{NewCategoricalColumn("c", []string{"z", "b", "q"})})
	got, err := base.Append(tail)
	if err != nil {
		t.Fatal(err)
	}
	c := got.Col(0)
	want := []string{"a", "b", "a", "z", "b", "q"}
	for i, w := range want {
		if c.Str(i) != w {
			t.Errorf("row %d: %q, want %q", i, c.Str(i), w)
		}
	}
	if !reflect.DeepEqual(c.Dict(), []string{"a", "b", "z", "q"}) {
		t.Errorf("dict = %v, want base prefix preserved then new values", c.Dict())
	}
	if base.Col(0).Cardinality() != 2 {
		t.Errorf("base dict mutated: %v", base.Col(0).Dict())
	}
}

func TestStreamingBuilderSealsChunksEagerly(t *testing.T) {
	mk := func(chunkRows int) (*Frame, int64) {
		b := NewBuilder("t")
		if chunkRows > 0 {
			b.SetChunkRows(chunkRows)
		}
		xc := b.AddNumeric("x")
		cc := b.AddCategorical("c")
		before := ChunkScans()
		for i := 0; i < 200; i++ {
			b.AppendFloat(xc, float64(i))
			b.AppendStr(cc, fmt.Sprintf("s%d", i%5))
		}
		streamed := ChunkScans() - before
		return b.MustBuild(), streamed
	}
	chunked, streamed := mk(64)
	if streamed != 6 {
		t.Errorf("streaming build sealed %d chunks during append, want 6 (3 full per column)", streamed)
	}
	before := ChunkScans()
	chunked.Fingerprint()
	if delta := ChunkScans() - before; delta != 2 {
		t.Errorf("finalize scanned %d chunks, want 2 (trailing partial per column)", delta)
	}
	flat, streamed := mk(0)
	if streamed != 0 {
		t.Errorf("non-streaming build sealed %d chunks during append, want 0", streamed)
	}
	// Layouts agree on content.
	if chunked.Fingerprint() != flat.Fingerprint() {
		t.Errorf("streamed fingerprint %x != flat %x", chunked.Fingerprint(), flat.Fingerprint())
	}
}

func TestBuilderAppendRows(t *testing.T) {
	b := NewBuilder("t")
	b.AddNumeric("x")
	b.AddCategorical("c")
	if err := b.AppendRows([][]any{
		{1.5, "a"},
		{int(2), "b"},
		{nil, nil},
		{uint8(3), "a"},
	}); err != nil {
		t.Fatal(err)
	}
	f := b.MustBuild()
	if f.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", f.NumRows())
	}
	if f.Col(0).Float(1) != 2 || f.Col(0).Float(3) != 3 || !f.Col(0).IsNull(2) {
		t.Errorf("numeric column wrong: %v", f.Col(0).Floats())
	}
	if f.Col(1).Str(1) != "b" || !f.Col(1).IsNull(2) {
		t.Errorf("categorical column wrong")
	}

	for name, rows := range map[string][][]any{
		"short row":       {{1.5}},
		"string->numeric": {{"x", "a"}},
		"float->cat":      {{1.0, 2.0}},
		"bad type":        {{[]byte("x"), "a"}},
	} {
		bad := NewBuilder("t")
		bad.AddNumeric("x")
		bad.AddCategorical("c")
		if err := bad.AppendRows(rows); err == nil {
			t.Errorf("%s: no error", name)
		}
		if bad.NumRows() != 0 {
			t.Errorf("%s: rejected row mutated builder (%d rows)", name, bad.NumRows())
		}
	}
}

func TestNullCountReadsSeal(t *testing.T) {
	f := buildChunked(t, 300, 64)
	wantX, wantC := f.Col(0).NullCount(), f.Col(1).NullCount() // pre-seal scan
	f.Fingerprint()
	if got := f.Col(0).NullCount(); got != wantX {
		t.Errorf("sealed numeric NullCount = %d, want %d", got, wantX)
	}
	if got := f.Col(1).NullCount(); got != wantC {
		t.Errorf("sealed categorical NullCount = %d, want %d", got, wantC)
	}
	if wantX == 0 || wantC == 0 {
		t.Fatal("fixture should contain NULLs")
	}
}

func TestInvalidateFingerprintDropsSeals(t *testing.T) {
	f := buildChunked(t, 128, 64)
	fp := f.Fingerprint()
	f.Col(0).floats[0] = 12345.678 // in-place mutation, against convention
	f.InvalidateFingerprint()
	if got := f.Fingerprint(); got == fp {
		t.Error("fingerprint unchanged after invalidate + mutation")
	}
	if f.ColumnSketch(0).Max < 12345 {
		t.Error("sketch not resealed after invalidate")
	}
}

// TestChunkBoundsAndFullChunks pins the chunk geometry helpers the
// transport's manifest slicing relies on.
func TestChunkBoundsAndFullChunks(t *testing.T) {
	f := buildChunked(t, 150, 64) // chunks: [0,64) [64,128) [128,150)
	want := [][2]int{{0, 64}, {64, 128}, {128, 150}}
	for j, w := range want {
		if s, e := f.ChunkBounds(j); s != w[0] || e != w[1] {
			t.Errorf("ChunkBounds(%d) = [%d,%d), want [%d,%d)", j, s, e, w[0], w[1])
		}
	}
	if got := f.FullChunks(); got != 2 {
		t.Errorf("FullChunks = %d, want 2 (last chunk partial)", got)
	}
	exact := buildChunked(t, 128, 64)
	if got := exact.FullChunks(); got != exact.NumChunks() {
		t.Errorf("aligned FullChunks = %d, want NumChunks %d", got, exact.NumChunks())
	}
}

// TestAdoptChunkPrefix pins the cross-frame seal transplant: after adopting
// the base's full chunks, sealing the grown frame scans only the rows past
// the prefix and every derived quantity matches a cold build.
func TestAdoptChunkPrefix(t *testing.T) {
	base := buildChunked(t, 128, 64)
	whole := buildChunked(t, 300, 64) // shares the generator: identical prefix
	cold := buildChunked(t, 300, 64)

	base.Fingerprint() // warm the base's seal; adoption reuses it
	before := ChunkScans()
	if err := whole.AdoptChunkPrefix(base, 2); err != nil {
		t.Fatal(err)
	}
	fp := whole.Fingerprint()
	scans := ChunkScans() - before
	// 300 rows / 64 = 5 chunks; 2 adopted, so each of the 2 columns scans 3.
	if scans > 6 {
		t.Errorf("adoption + fingerprint scanned %d chunks, want ≤ 6", scans)
	}
	if fp != cold.Fingerprint() {
		t.Errorf("adopted fingerprint %x, cold build %x", fp, cold.Fingerprint())
	}
	for i := 0; i < whole.NumCols(); i++ {
		if !reflect.DeepEqual(whole.ChunkFingerprints(i), cold.ChunkFingerprints(i)) {
			t.Errorf("col %d: chunk fingerprints diverged after adoption", i)
		}
		if !reflect.DeepEqual(whole.ColumnValidWords(i), cold.ColumnValidWords(i)) {
			t.Errorf("col %d: valid words diverged after adoption", i)
		}
	}

	// Adopting zero (or fewer) chunks is a no-op, not an error.
	if err := cold.AdoptChunkPrefix(base, 0); err != nil {
		t.Errorf("zero-chunk adoption: %v", err)
	}
}

// TestAdoptChunkPrefixRejectsMismatch covers the guard rails: capacity,
// schema, span, and dictionary-prefix violations all refuse loudly.
func TestAdoptChunkPrefixRejectsMismatch(t *testing.T) {
	base := buildChunked(t, 128, 64)
	f := buildChunked(t, 300, 64)

	if err := f.AdoptChunkPrefix(buildChunked(t, 128, 128), 1); err == nil {
		t.Error("capacity mismatch accepted")
	}
	if err := f.AdoptChunkPrefix(MustNew("e", nil), 1); err == nil {
		t.Error("column-count mismatch accepted")
	}
	if err := f.AdoptChunkPrefix(base, 3); err == nil {
		t.Error("prefix beyond the base accepted")
	}
	if err := base.AdoptChunkPrefix(f, 3); err == nil {
		t.Error("prefix beyond the adopter accepted")
	}

	renamed, err := NewChunked("t", []*Column{
		NewNumericColumn("y", make([]float64, 128)),
		NewCategoricalColumn("c", make([]string, 128)),
	}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AdoptChunkPrefix(renamed, 1); err == nil {
		t.Error("column-name mismatch accepted")
	}

	// A base whose dictionary is not a prefix of the adopter's: its chunk
	// chains hash different codes, so adoption must refuse.
	strs := make([]string, 128)
	for i := range strs {
		strs[i] = fmt.Sprintf("w%d", i%13) // disjoint from buildChunked's v%d
	}
	divergent, err := NewChunked("t", []*Column{
		NewNumericColumn("x", make([]float64, 128)),
		NewCategoricalColumn("c", strs),
	}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AdoptChunkPrefix(divergent, 1); err == nil {
		t.Error("divergent dictionary accepted")
	}
}
