package frame

import (
	"math"
	"strings"
	"testing"
)

func sampleFrame(t *testing.T) *Frame {
	t.Helper()
	num := NewNumericColumn("x", []float64{1, 2, math.NaN(), 4, 5})
	cat := NewCategoricalColumn("c", []string{"a", "b", "a", "c", "b"})
	f, err := New("t", []*Column{num, cat})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	x := NewNumericColumn("x", []float64{1, 2})
	y := NewNumericColumn("y", []float64{1, 2, 3})
	if _, err := New("t", []*Column{x, y}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	x2 := NewNumericColumn("x", []float64{3, 4})
	if _, err := New("t", []*Column{x, x2}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := New("t", []*Column{nil}); err == nil {
		t.Fatal("nil column accepted")
	}
	anon := NewNumericColumn("", []float64{1})
	if _, err := New("t", []*Column{anon}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestBasicAccessors(t *testing.T) {
	f := sampleFrame(t)
	if f.Name() != "t" || f.NumRows() != 5 || f.NumCols() != 2 {
		t.Fatalf("unexpected shape: %s %d×%d", f.Name(), f.NumRows(), f.NumCols())
	}
	c, ok := f.Lookup("x")
	if !ok || c.Kind() != Numeric {
		t.Fatal("Lookup(x) failed")
	}
	if f.ColIndex("c") != 1 || f.ColIndex("zzz") != -1 {
		t.Fatal("ColIndex wrong")
	}
	if got := f.ColumnNames(); got[0] != "x" || got[1] != "c" {
		t.Fatalf("ColumnNames = %v", got)
	}
	if n := f.NumericColumns(); len(n) != 1 || n[0] != 0 {
		t.Fatalf("NumericColumns = %v", n)
	}
	if n := f.CategoricalColumns(); len(n) != 1 || n[0] != 1 {
		t.Fatalf("CategoricalColumns = %v", n)
	}
}

func TestNullHandling(t *testing.T) {
	f := sampleFrame(t)
	x, _ := f.Lookup("x")
	if !x.IsNull(2) || x.IsNull(0) {
		t.Fatal("numeric NULL detection wrong")
	}
	if x.NullCount() != 1 {
		t.Fatalf("NullCount = %d, want 1", x.NullCount())
	}
	if v := x.Value(2); v != nil {
		t.Fatalf("Value of NULL = %v, want nil", v)
	}
	if v := x.Value(0); v != 1.0 {
		t.Fatalf("Value(0) = %v, want 1", v)
	}
}

func TestCategoricalDictionary(t *testing.T) {
	f := sampleFrame(t)
	c, _ := f.Lookup("c")
	if c.Cardinality() != 3 {
		t.Fatalf("Cardinality = %d, want 3", c.Cardinality())
	}
	if c.Str(0) != "a" || c.Str(1) != "b" || c.Str(3) != "c" {
		t.Fatal("Str decoding wrong")
	}
	if c.CodeOf("a") != c.Code(0) {
		t.Fatal("CodeOf(a) does not round-trip")
	}
	if c.CodeOf("missing") != -1 {
		t.Fatal("CodeOf(missing) should be -1")
	}
	if v := c.Value(1); v != "b" {
		t.Fatalf("Value(1) = %v, want b", v)
	}
}

func TestKindPanics(t *testing.T) {
	f := sampleFrame(t)
	x, _ := f.Lookup("x")
	c, _ := f.Lookup("c")
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Float on categorical", func() { c.Float(0) })
	mustPanic("Floats on categorical", func() { c.Floats() })
	mustPanic("Str on numeric", func() { x.Str(0) })
	mustPanic("Codes on numeric", func() { x.Codes() })
	mustPanic("Dict on numeric", func() { x.Dict() })
	mustPanic("Cardinality on numeric", func() { x.Cardinality() })
	mustPanic("CodeOf on numeric", func() { x.CodeOf("a") })
}

func TestSelect(t *testing.T) {
	f := sampleFrame(t)
	sub, err := f.Select("c")
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumCols() != 1 || sub.Col(0).Name() != "c" {
		t.Fatal("Select returned wrong columns")
	}
	if _, err := f.Select("nope"); err == nil {
		t.Fatal("Select accepted unknown column")
	}
}

func TestFilter(t *testing.T) {
	f := sampleFrame(t)
	mask := BitmapFromIndices(5, []int{0, 3, 4})
	sub, err := f.Filter(mask)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumRows() != 3 {
		t.Fatalf("filtered rows = %d, want 3", sub.NumRows())
	}
	x, _ := sub.Lookup("x")
	if x.Float(0) != 1 || x.Float(1) != 4 || x.Float(2) != 5 {
		t.Fatalf("filtered numeric values wrong: %v", x.Floats())
	}
	c, _ := sub.Lookup("c")
	if c.Str(0) != "a" || c.Str(1) != "c" || c.Str(2) != "b" {
		t.Fatal("filtered categorical values wrong")
	}
	// Dictionary of the filtered column must be rebuilt (no stale entries).
	if c.Cardinality() != 3 {
		t.Fatalf("filtered cardinality = %d, want 3", c.Cardinality())
	}
	wrong := NewBitmap(4)
	if _, err := f.Filter(wrong); err == nil {
		t.Fatal("Filter accepted wrong-length mask")
	}
}

func TestFilterPreservesNulls(t *testing.T) {
	b := NewBuilder("t")
	xi := b.AddNumeric("x")
	ci := b.AddCategorical("c")
	b.AppendFloat(xi, 1)
	b.AppendStr(ci, "a")
	b.AppendNull(xi)
	b.AppendNull(ci)
	f := b.MustBuild()
	mask := NewBitmap(2)
	mask.SetAll()
	sub, err := f.Filter(mask)
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Col(0).IsNull(1) || !sub.Col(1).IsNull(1) {
		t.Fatal("Filter dropped NULLs")
	}
}

func TestSplitNumeric(t *testing.T) {
	f := sampleFrame(t)
	mask := BitmapFromIndices(5, []int{0, 1, 2})
	in, out, err := f.SplitNumeric("x", mask)
	if err != nil {
		t.Fatal(err)
	}
	// Row 2 is NULL and must be excluded from both sides.
	if len(in) != 2 || in[0] != 1 || in[1] != 2 {
		t.Fatalf("in = %v, want [1 2]", in)
	}
	if len(out) != 2 || out[0] != 4 || out[1] != 5 {
		t.Fatalf("out = %v, want [4 5]", out)
	}
	if _, _, err := f.SplitNumeric("c", mask); err == nil {
		t.Fatal("SplitNumeric accepted categorical column")
	}
	if _, _, err := f.SplitNumeric("zzz", mask); err == nil {
		t.Fatal("SplitNumeric accepted unknown column")
	}
	if _, _, err := f.SplitNumeric("x", NewBitmap(3)); err == nil {
		t.Fatal("SplitNumeric accepted wrong-length mask")
	}
}

func TestSplitInvariant(t *testing.T) {
	// |Cᴵ| + |Cᴼ| must equal the non-NULL count for any mask (Figure 2).
	f := sampleFrame(t)
	for _, idx := range [][]int{{}, {0}, {0, 1, 2, 3, 4}, {2}, {1, 3}} {
		mask := BitmapFromIndices(5, idx)
		in, out, err := f.SplitNumeric("x", mask)
		if err != nil {
			t.Fatal(err)
		}
		if len(in)+len(out) != 4 { // 5 rows, 1 NULL
			t.Fatalf("mask %v: |in|+|out| = %d, want 4", idx, len(in)+len(out))
		}
	}
}

func TestSplitCodes(t *testing.T) {
	f := sampleFrame(t)
	mask := BitmapFromIndices(5, []int{0, 1})
	in, out, dict, err := f.SplitCodes("c", mask)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 2 || len(out) != 3 {
		t.Fatalf("split sizes = %d/%d, want 2/3", len(in), len(out))
	}
	if dict[in[0]] != "a" || dict[in[1]] != "b" {
		t.Fatal("in codes decode incorrectly")
	}
	if _, _, _, err := f.SplitCodes("x", mask); err == nil {
		t.Fatal("SplitCodes accepted numeric column")
	}
}

func TestSortedNumeric(t *testing.T) {
	f := sampleFrame(t)
	vals, err := f.SortedNumeric("x")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 4, 5}
	if len(vals) != len(want) {
		t.Fatalf("SortedNumeric = %v, want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("SortedNumeric = %v, want %v", vals, want)
		}
	}
	if _, err := f.SortedNumeric("c"); err == nil {
		t.Fatal("SortedNumeric accepted categorical column")
	}
}

func TestHead(t *testing.T) {
	f := sampleFrame(t)
	h := f.Head(2)
	if !strings.Contains(h, "5 rows × 2 cols") || !strings.Contains(h, "NULL") == false && false {
		t.Fatalf("Head output unexpected: %q", h)
	}
	if !strings.Contains(h, "x\tc") {
		t.Fatalf("Head missing header: %q", h)
	}
	hAll := f.Head(100)
	if !strings.Contains(hAll, "NULL") {
		t.Fatalf("Head(100) should show the NULL row: %q", hAll)
	}
}

func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder("bt")
	xi := b.AddNumeric("x")
	ci := b.AddCategorical("c")
	for i := 0; i < 10; i++ {
		b.AppendFloat(xi, float64(i))
		if i%3 == 0 {
			b.AppendNull(ci)
		} else {
			b.AppendStr(ci, "v")
		}
	}
	f, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 10 {
		t.Fatalf("rows = %d, want 10", f.NumRows())
	}
	c, _ := f.Lookup("c")
	if c.NullCount() != 4 {
		t.Fatalf("categorical nulls = %d, want 4", c.NullCount())
	}
}

func TestBuilderTypePanics(t *testing.T) {
	b := NewBuilder("bt")
	xi := b.AddNumeric("x")
	ci := b.AddCategorical("c")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AppendStr on numeric did not panic")
			}
		}()
		b.AppendStr(xi, "oops")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AppendFloat on categorical did not panic")
			}
		}()
		b.AppendFloat(ci, 1)
	}()
}

func TestKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Categorical.String() != "categorical" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind string wrong")
	}
}
