package frame

import (
	"math"
	"testing"
)

// TestBitmapWordsRoundTrip pins the wire representation of selections: a
// bitmap rebuilt from its Words is equal to the original and fingerprints
// identically, for lengths on and off word boundaries.
func TestBitmapWordsRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130, 1000} {
		b := NewBitmap(n)
		for i := 0; i < n; i += 3 {
			b.Set(i)
		}
		rb, err := BitmapFromWords(n, b.Words())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !rb.Equal(b) {
			t.Fatalf("n=%d: rebuilt bitmap differs", n)
		}
		if rb.Fingerprint() != b.Fingerprint() {
			t.Fatalf("n=%d: rebuilt bitmap fingerprints differently", n)
		}
	}
}

// TestBitmapFromWordsRejectsCorruption covers the decode error paths: wrong
// word counts, stray bits beyond the row count, and negative lengths.
func TestBitmapFromWordsRejectsCorruption(t *testing.T) {
	if _, err := BitmapFromWords(-1, nil); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := BitmapFromWords(65, []uint64{0}); err == nil {
		t.Error("short word slice accepted")
	}
	if _, err := BitmapFromWords(10, []uint64{0, 0}); err == nil {
		t.Error("long word slice accepted")
	}
	if _, err := BitmapFromWords(10, []uint64{1 << 12}); err == nil {
		t.Error("stray bit beyond the row count accepted")
	}
	// Words returns a copy: mutating it must not corrupt the bitmap.
	b := NewBitmap(70)
	b.Set(3)
	w := b.Words()
	w[0] = ^uint64(0)
	if b.Count() != 1 {
		t.Error("mutating Words() result corrupted the bitmap")
	}
}

// TestCategoricalColumnFromCodes pins the fingerprint-preserving rebuild: a
// categorical column reassembled from its exact codes and dictionary hashes
// identically to the original — including NULL codes and a dictionary whose
// order differs from first-occurrence interning.
func TestCategoricalColumnFromCodes(t *testing.T) {
	orig := NewCategoricalColumn("city", []string{"b", "a", "b", "c"})
	orig.codes[2] = -1 // plant a NULL
	rebuilt, err := NewCategoricalColumnFromCodes("city", append([]int32(nil), orig.codes...), append([]string(nil), orig.dict...))
	if err != nil {
		t.Fatal(err)
	}
	f1 := MustNew("t", []*Column{orig, NewNumericColumn("x", []float64{1, 2, math.NaN(), 4})})
	f2 := MustNew("t", []*Column{rebuilt, NewNumericColumn("x", []float64{1, 2, math.NaN(), 4})})
	if f1.Fingerprint() != f2.Fingerprint() {
		t.Error("rebuilt categorical column fingerprints differently")
	}
	if rebuilt.Str(1) != "a" || !rebuilt.IsNull(2) || rebuilt.CodeOf("c") != orig.CodeOf("c") {
		t.Error("rebuilt column decodes differently")
	}

	if _, err := NewCategoricalColumnFromCodes("c", []int32{3}, []string{"a"}); err == nil {
		t.Error("out-of-range code accepted")
	}
	if _, err := NewCategoricalColumnFromCodes("c", []int32{-2}, []string{"a"}); err == nil {
		t.Error("code below -1 accepted")
	}
	if _, err := NewCategoricalColumnFromCodes("c", []int32{0}, []string{"a", "a"}); err == nil {
		t.Error("duplicate dictionary accepted")
	}
}
