package frame

import (
	"sync"
	"testing"

	"repro/internal/memo"
)

func twoColFrame(t *testing.T, name string, xs []float64, cats []string) *Frame {
	t.Helper()
	f, err := New(name, []*Column{
		NewNumericColumn("x", xs),
		NewCategoricalColumn("g", cats),
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFrameFingerprintContentAddressed asserts the core property the memo
// layer relies on: two independently built frames with identical content
// fingerprint identically, and any content or schema difference changes the
// fingerprint.
func TestFrameFingerprintContentAddressed(t *testing.T) {
	xs := []float64{1, 2, 3}
	cats := []string{"a", "b", "a"}
	a := twoColFrame(t, "t", append([]float64(nil), xs...), append([]string(nil), cats...))
	b := twoColFrame(t, "t", append([]float64(nil), xs...), append([]string(nil), cats...))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical frames fingerprint differently")
	}
	// The table name is excluded: same data under another name still hits.
	renamed := twoColFrame(t, "other", append([]float64(nil), xs...), append([]string(nil), cats...))
	if renamed.Fingerprint() != a.Fingerprint() {
		t.Fatal("table name leaked into the content fingerprint")
	}

	different := []*Frame{
		twoColFrame(t, "t", []float64{1, 2, 4}, cats),      // cell change
		twoColFrame(t, "t", []float64{1, 2}, cats[:2]),     // row count
		twoColFrame(t, "t", xs, []string{"a", "b", "b"}),   // categorical cell
		MustNew("t", []*Column{NewNumericColumn("y", xs)}), // schema
	}
	seen := map[uint64]bool{a.Fingerprint(): true}
	for i, f := range different {
		fp := f.Fingerprint()
		if seen[fp] {
			t.Errorf("variant %d collides with a previous fingerprint", i)
		}
		seen[fp] = true
	}
}

// TestFrameFingerprintDistinguishesColumnOrder asserts column identity is
// positional: swapping two columns changes the fingerprint.
func TestFrameFingerprintDistinguishesColumnOrder(t *testing.T) {
	x := NewNumericColumn("x", []float64{1, 2})
	y := NewNumericColumn("y", []float64{3, 4})
	ab := MustNew("t", []*Column{x, y})
	ba := MustNew("t", []*Column{y, x})
	if ab.Fingerprint() == ba.Fingerprint() {
		t.Fatal("column order does not affect the fingerprint")
	}
}

// TestFrameFingerprintConcurrent asserts the lazily cached fingerprint is
// race-free and stable under concurrent first reads.
func TestFrameFingerprintConcurrent(t *testing.T) {
	f := twoColFrame(t, "t", []float64{5, 6, 7, 8}, []string{"p", "q", "p", "q"})
	const n = 8
	got := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = f.Fingerprint()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatalf("goroutine %d saw %x, goroutine 0 saw %x", i, got[i], got[0])
		}
	}
}

// TestBitmapFingerprint asserts selection fingerprints separate by length
// and by set bits, and track mutation (the cached hash is invalidated by
// every mutating method).
func TestBitmapFingerprint(t *testing.T) {
	a := NewBitmap(100)
	b := NewBitmap(100)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal bitmaps fingerprint differently")
	}
	if NewBitmap(101).Fingerprint() == a.Fingerprint() {
		t.Fatal("length not fingerprinted")
	}
	a.Set(3)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("set bit not fingerprinted")
	}
	b.Set(3)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same selection fingerprints differently")
	}
	a.Clear(3)
	if a.Fingerprint() != NewBitmap(100).Fingerprint() {
		t.Fatal("mutation not reflected: fingerprint must be recomputed per call")
	}
}

// TestInvalidateFingerprint pins the escape hatch for in-place mutators:
// the cached fingerprint survives mutation until invalidated, and rehashes
// to the mutated content afterwards.
func TestInvalidateFingerprint(t *testing.T) {
	f := twoColFrame(t, "t", []float64{1, 2, 3}, []string{"a", "b", "a"})
	before := f.Fingerprint()
	f.Col(0).Floats()[0] = 99 // in-place mutation against the convention
	if f.Fingerprint() != before {
		t.Fatal("fingerprint recomputed without invalidation (caching broken)")
	}
	f.InvalidateFingerprint()
	after := f.Fingerprint()
	if after == before {
		t.Fatal("fingerprint unchanged after invalidation despite mutated content")
	}
	want := twoColFrame(t, "t", []float64{99, 2, 3}, []string{"a", "b", "a"}).Fingerprint()
	if after != want {
		t.Fatal("post-invalidation fingerprint does not match the mutated content")
	}
}

// TestBitmapFingerprintCachedAndInvalidated pins the caching contract of
// Bitmap.Fingerprint: repeated calls on an unchanged bitmap return the
// cached value, every mutating method invalidates it, and the recomputed
// hash always matches a fresh bitmap with the same content.
func TestBitmapFingerprintCachedAndInvalidated(t *testing.T) {
	fresh := func(n int, idx ...int) uint64 {
		return BitmapFromIndices(n, idx).Fingerprint()
	}
	b := BitmapFromIndices(100, []int{1, 40, 99})
	if b.Fingerprint() != b.Fingerprint() {
		t.Fatal("repeated fingerprint of an unchanged bitmap differs")
	}

	mutations := []struct {
		name  string
		apply func(*Bitmap)
		want  uint64
	}{
		{"Set", func(b *Bitmap) { b.Set(7) }, fresh(100, 1, 7, 40, 99)},
		{"Clear", func(b *Bitmap) { b.Clear(7) }, fresh(100, 1, 40, 99)},
		{"Or", func(b *Bitmap) { b.Or(BitmapFromIndices(100, []int{2})) }, fresh(100, 1, 2, 40, 99)},
		{"AndNot", func(b *Bitmap) { b.AndNot(BitmapFromIndices(100, []int{2})) }, fresh(100, 1, 40, 99)},
		{"And", func(b *Bitmap) { b.And(BitmapFromIndices(100, []int{1, 40})) }, fresh(100, 1, 40)},
		{"Not", func(b *Bitmap) { b.Not() }, func() uint64 {
			nb := BitmapFromIndices(100, []int{1, 40})
			return nb.Not().Fingerprint()
		}()},
		{"SetAll", func(b *Bitmap) { b.SetAll() }, func() uint64 {
			nb := NewBitmap(100)
			nb.SetAll()
			return nb.Fingerprint()
		}()},
	}
	for _, m := range mutations {
		before := b.Fingerprint() // populate the cache
		m.apply(b)
		after := b.Fingerprint()
		if after != m.want {
			t.Errorf("%s: fingerprint %#x does not match fresh content %#x (stale cache?)", m.name, after, m.want)
		}
		if after == before {
			t.Errorf("%s: fingerprint unchanged after mutation", m.name)
		}
	}

	// Clone carries the cached value and stays equal to its source…
	c := b.Clone()
	if c.Fingerprint() != b.Fingerprint() {
		t.Fatal("clone fingerprints differently from its source")
	}
	// …but mutating the clone must not disturb the original's cache.
	c.Clear(0)
	c.Set(0)
	if b.Fingerprint() != c.Fingerprint() {
		t.Fatal("identical content after clone round-trip fingerprints differently")
	}
}

// TestFingerprintZeroHashRemapped pins the cache-sentinel bugfix: content
// whose raw hash is 0 (forced here through the injectable hashSum hook)
// must be remapped to the reserved non-zero fingerprint and cached like
// any other value — one hash per content generation, not one per call —
// while InvalidateFingerprint (and bitmap mutation) still forces a rehash.
func TestFingerprintZeroHashRemapped(t *testing.T) {
	calls := 0
	orig := hashSum
	hashSum = func(h *memo.Hasher) uint64 { calls++; return 0 }
	defer func() { hashSum = orig }()

	f := twoColFrame(t, "t", []float64{1, 2, 3}, []string{"a", "b", "a"})
	if got := f.Fingerprint(); got != zeroHashFingerprint {
		t.Fatalf("zero-hash frame fingerprint = %d, want reserved %d", got, zeroHashFingerprint)
	}
	if f.Fingerprint() != zeroHashFingerprint || calls != 1 {
		t.Fatalf("zero-hash frame rehashed on a repeat call (%d hashes)", calls)
	}
	f.InvalidateFingerprint()
	if f.Fingerprint() != zeroHashFingerprint || calls != 2 {
		t.Fatalf("invalidation did not force exactly one rehash (%d hashes)", calls)
	}

	calls = 0
	b := NewBitmap(130)
	b.Set(5)
	if got := b.Fingerprint(); got != zeroHashFingerprint {
		t.Fatalf("zero-hash bitmap fingerprint = %d, want reserved %d", got, zeroHashFingerprint)
	}
	if b.Fingerprint() != zeroHashFingerprint || calls != 1 {
		t.Fatalf("zero-hash bitmap rehashed on a repeat call (%d hashes)", calls)
	}
	b.Set(6) // mutation invalidates
	if b.Fingerprint() != zeroHashFingerprint || calls != 2 {
		t.Fatalf("bitmap mutation did not force exactly one rehash (%d hashes)", calls)
	}
}
