// Package frame implements the in-memory columnar data representation that
// every other layer of the system builds on.
//
// A Frame is an ordered collection of named, equally-long columns. Two
// column kinds exist: numeric columns store float64 values (with NaN
// representing NULL, matching how the paper's MonetDB/R stack surfaces
// missing doubles) and categorical columns store dictionary-encoded strings
// (code -1 representing NULL). Frames are immutable once built; Builder is
// the append-only construction path used by the CSV loader and the
// synthetic-data generators.
//
// Frames are the unit of exchange between the SQL layer (package db), the
// statistics layers, and the Ziggy engine (package core). Selection results
// are not materialized as new frames; instead they are represented by a
// Bitmap over row indices, which is how the paper splits every column C
// into an inside part Cᴵ and an outside part Cᴼ (paper Figure 2). Bitmap
// is a packed word-level bitset, so splitting stays cheap even on the
// paper's widest tables.
//
// Contracts the statistics layers rely on:
//
//   - Column accessors (Float, Code, Str) never copy; Floats and Codes
//     expose the backing slices read-only. Callers that need NULL-free
//     views strip NULLs while splitting (see core.splitNumericCol), so
//     packages stats, effect and hypo can assume NaN-free input on their
//     hot paths — with the robust entry points additionally hardened to
//     report NaN-bearing input as untestable rather than panicking.
//   - NullCount is O(1) bookkeeping recorded at build time, which lets
//     rank-once optimizations (the Spearman dependency matrix) detect the
//     NULL-free columns whose per-column ranks are reusable across pairs.
package frame
