package load

import (
	"strings"
	"testing"
)

// quickSpec is small enough to expand instantly but exercises mixed
// tables, all three phase kinds and the option mixes.
const quickSpec = `zigload v1
name quick
sessions 3
table boxoffice seed=1
table micro name=m1 seed=5 rows=200 cols=8
phase warm kind=repeat requests=4 think=exp:100us pool=3 exclude=0.5
phase sweep kind=churn requests=3 think=none skipcache=0.5
phase rush kind=burst requests=5 think=fixed:1ms modes=default:2,robust:1
`

func mustSchedule(t *testing.T, specText string, seed uint64) *Schedule {
	t.Helper()
	spec, err := Parse(specText)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func TestScheduleShape(t *testing.T) {
	sched := mustSchedule(t, quickSpec, 1)
	if got := sched.TotalRequests(); got != 3*(4+3+5) {
		t.Fatalf("TotalRequests = %d", got)
	}
	if len(sched.Tables) != 2 || sched.Tables[1].Frame.Name() != "m1" {
		t.Fatalf("tables: %d, second name %q", len(sched.Tables), sched.Tables[1].Frame.Name())
	}
	seenTable := map[string]bool{}
	seenSkip, seenRobust := false, false
	for si, reqs := range sched.Sessions {
		if len(reqs) != 4+3+5 {
			t.Fatalf("session %d has %d requests", si, len(reqs))
		}
		for _, r := range reqs {
			seenTable[r.Table] = true
			seenSkip = seenSkip || r.SkipCache
			seenRobust = seenRobust || r.Mode.Robust
			if !strings.HasPrefix(r.SQL, "SELECT * FROM "+r.Table+" WHERE ") {
				t.Fatalf("malformed SQL %q for table %q", r.SQL, r.Table)
			}
			if len(r.PredCols) != 1 || r.PredCols[0] == "" {
				t.Fatalf("missing predicate column for %q", r.SQL)
			}
			if !strings.Contains(r.SQL, " "+r.PredCols[0]+" >= ") {
				t.Fatalf("PredCols %v does not match SQL %q", r.PredCols, r.SQL)
			}
			if r.Phase == "rush" && r.Think != 0 {
				t.Fatalf("burst request has think %v", r.Think)
			}
		}
	}
	if !seenTable["boxoffice"] || !seenTable["m1"] {
		t.Errorf("tables drawn: %v, want both", seenTable)
	}
	if !seenSkip {
		t.Error("no request drew SkipCache despite skipcache=0.5")
	}
	if !seenRobust {
		t.Error("no request drew robust mode despite modes=default:2,robust:1")
	}
}

// TestScheduleDeterminism pins the generation rail: the same (spec, seed)
// renders identically; a different seed renders differently.
func TestScheduleDeterminism(t *testing.T) {
	a := mustSchedule(t, quickSpec, 42)
	b := mustSchedule(t, quickSpec, 42)
	if a.Render() != b.Render() {
		t.Error("same (spec, seed) produced different schedules")
	}
	if a.Hash() != b.Hash() {
		t.Error("same (spec, seed) produced different hashes")
	}
	c := mustSchedule(t, quickSpec, 43)
	if a.Hash() == c.Hash() {
		t.Error("different seeds produced identical schedules")
	}
}

// TestSchedulePoolSharing asserts repeat pools are shared across sessions:
// the distinct-query count of a repeat phase is bounded by pool × tables,
// no matter how many sessions draw from it — the property that makes
// repeat phases cache-friendly across the population.
func TestSchedulePoolSharing(t *testing.T) {
	spec, err := Parse(`zigload v1
name pools
sessions 8
table micro name=m1 seed=3 rows=200 cols=6
table micro name=m2 seed=4 rows=200 cols=6
phase p kind=repeat requests=10 think=none pool=2
`)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, reqs := range sched.Sessions {
		for _, r := range reqs {
			distinct[r.SQL] = true
		}
	}
	if len(distinct) > 2*2 {
		t.Errorf("repeat phase drew %d distinct queries, want ≤ pool×tables = 4", len(distinct))
	}
	if len(distinct) < 2 {
		t.Errorf("repeat phase drew only %d distinct queries", len(distinct))
	}
}

// TestScheduleChurnIsFresh asserts churn draws are (nearly) all distinct —
// the cache-hostile property.
func TestScheduleChurnIsFresh(t *testing.T) {
	spec, err := Parse(`zigload v1
name churn
sessions 4
table boxoffice seed=1
phase p kind=churn requests=25 think=none
`)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	total := 0
	for _, reqs := range sched.Sessions {
		for _, r := range reqs {
			distinct[r.SQL] = true
			total++
		}
	}
	// Thresholds are drawn from a continuous quantile range; collisions
	// should be rare.
	if len(distinct) < total*9/10 {
		t.Errorf("churn drew %d distinct of %d queries, want ≥ 90%%", len(distinct), total)
	}
}
