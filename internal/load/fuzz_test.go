package load

import "testing"

// FuzzWorkloadSpec throws arbitrary bytes at the spec parser. The
// invariants: Parse never panics; any spec it accepts must survive the
// canonical round trip (print → reparse → print is the identity), and the
// reparsed spec must validate — i.e. the printer never emits something the
// parser or validator would reject.
func FuzzWorkloadSpec(f *testing.F) {
	f.Add(sampleSpec)
	f.Add("zigload v1\nname x\nsessions 1\ntable uscrime\nphase p kind=repeat requests=1 think=none\n")
	f.Add("zigload v1\nname x\nsessions 2\ntable micro rows=100 cols=4 seed=9\nphase a kind=churn requests=3 think=exp:1ms\n")
	f.Add("zigload v9000\n")
	f.Add("phase p kind=burst think=uniform:1ms,2ms modes=robust:1")
	f.Fuzz(func(t *testing.T, text string) {
		s1, err := Parse(text)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text1 := s1.String()
		s2, err := Parse(text1)
		if err != nil {
			t.Fatalf("canonical print rejected by parser: %v\ninput:\n%s\nprint:\n%s", err, text, text1)
		}
		if text2 := s2.String(); text2 != text1 {
			t.Fatalf("round trip unstable:\n--- first ---\n%s--- second ---\n%s", text1, text2)
		}
	})
}
