package load

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"

	"repro/internal/frame"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/synth"
)

// Threshold queries draw their quantile in [qMin, qMax], keeping both the
// selection and the complement comfortably above the engine's minimum
// split size even on the smallest allowed micro table.
const (
	qMin = 0.10
	qMax = 0.90
)

// Request is one scheduled characterization: everything a target needs to
// execute it and everything the renderer needs to prove two runs replayed
// the same traffic.
type Request struct {
	// Session and Phase locate the request in the schedule.
	Session int
	Phase   string
	// Table is the registered table name the query selects from.
	Table string
	// SQL is the threshold query.
	SQL string
	// PredCols are the WHERE-referenced columns, precomputed so in-process
	// targets apply the same exclusions ziggyd derives server-side from
	// excludePredicate.
	PredCols []string
	// Mode selects the engine configuration (robust/extended variants).
	Mode Mode
	// Exclude keeps the predicate columns out of the views.
	Exclude bool
	// SkipCache bypasses the report-level memo, forcing the pipeline.
	SkipCache bool
	// Approx asks for a sample-based approximate answer.
	Approx bool
	// Think is the pause before issuing this request.
	Think time.Duration
}

// ScheduleTable is one materialized table with its query-generation state.
type ScheduleTable struct {
	// Frame is the table, named Spec.Tables[i].Name.
	Frame *frame.Frame
	// eligible are the numeric columns threshold queries may select on;
	// sorted holds their non-NULL values for quantile lookups.
	eligible []string
	sorted   map[string][]float64
}

// Schedule is the fully expanded request sequence of (Spec, seed): a pure
// function of the pair, so two runs — or a run and its checked-in baseline
// — can compare hashes to prove they replayed identical traffic.
type Schedule struct {
	Spec *Spec
	Seed uint64
	// Tables is parallel to Spec.Tables.
	Tables []ScheduleTable
	// Sessions holds each session's request sequence.
	Sessions [][]Request
}

// mixSeed derives a child seed from independent parts (FNV-1a over the
// little-endian bytes), so pools, sessions and phases draw from
// non-overlapping streams without any ordering coupling.
func mixSeed(parts ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range parts {
		for i := range buf {
			buf[i] = byte(p >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Stream tags for mixSeed, so the pool and session streams cannot collide.
const (
	streamPool    = 0x706f6f6c // "pool"
	streamSession = 0x73657373 // "sess"
	streamApprox  = 0x61707278 // "aprx"
)

// BuildSchedule materializes the spec's tables and expands every session's
// request sequence. Generation is target-independent: the schedule never
// depends on timing, shard count or responses.
func BuildSchedule(spec *Spec, seed uint64) (*Schedule, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{Spec: spec, Seed: seed}
	for _, t := range spec.Tables {
		tbl, err := materializeTable(t)
		if err != nil {
			return nil, err
		}
		s.Tables = append(s.Tables, tbl)
	}

	// Repeat pools are generated before any session and shared by all of
	// them: colleagues re-running each other's queries is exactly what makes
	// the repeat phases cache-friendly across sessions.
	pools := make([][][]string, len(spec.Phases))
	for pi, p := range spec.Phases {
		if p.Kind == KindChurn {
			continue
		}
		pools[pi] = make([][]string, len(s.Tables))
		for ti := range s.Tables {
			r := randx.New(mixSeed(seed, streamPool, uint64(pi), uint64(ti)))
			pool := make([]string, p.Pool)
			for k := range pool {
				pool[k] = s.Tables[ti].drawSQL(r)
			}
			pools[pi][ti] = pool
		}
	}

	s.Sessions = make([][]Request, spec.Sessions)
	for si := range s.Sessions {
		r := randx.New(mixSeed(seed, streamSession, uint64(si)))
		// Approx draws come from a forked stream so turning approximation on
		// (or off) in a phase never perturbs which queries, modes and think
		// times the rest of the schedule draws.
		ra := randx.New(mixSeed(seed, streamApprox, uint64(si)))
		var reqs []Request
		for pi, p := range spec.Phases {
			for k := 0; k < p.Requests; k++ {
				ti := 0
				if len(s.Tables) > 1 {
					ti = r.Intn(len(s.Tables))
				}
				var sql string
				if p.Kind == KindChurn {
					sql = s.Tables[ti].drawSQL(r)
				} else {
					pool := pools[pi][ti]
					sql = pool[r.Intn(len(pool))]
				}
				req := Request{
					Session:   si,
					Phase:     p.Name,
					Table:     s.Tables[ti].Frame.Name(),
					SQL:       sql,
					PredCols:  []string{sqlColumn(sql)},
					Exclude:   r.Bernoulli(p.Exclude),
					SkipCache: r.Bernoulli(p.SkipCache),
					Approx:    ra.Bernoulli(p.Approx),
					Mode:      drawMode(r, p.Modes),
					Think:     drawThink(r, p),
				}
				reqs = append(reqs, req)
			}
		}
		s.Sessions[si] = reqs
	}
	return s, nil
}

// materializeTable generates the table and precomputes its eligible
// threshold columns.
func materializeTable(t TableSpec) (ScheduleTable, error) {
	var f *frame.Frame
	switch t.Dataset {
	case DatasetUSCrime:
		f = synth.USCrime(t.Seed)
	case DatasetBoxOffice:
		f = synth.BoxOffice(t.Seed)
	case DatasetInnovation:
		f = synth.Innovation(t.Seed)
	case DatasetMicro:
		f = synth.Micro(t.Name, t.Seed, t.Rows, t.Cols)
	default:
		return ScheduleTable{}, fmt.Errorf("load: unknown dataset %q", t.Dataset)
	}
	if f.Name() != t.Name {
		renamed, err := frame.New(t.Name, f.Columns())
		if err != nil {
			return ScheduleTable{}, fmt.Errorf("load: renaming %s table to %q: %w", t.Dataset, t.Name, err)
		}
		f = renamed
	}
	tbl := ScheduleTable{Frame: f, sorted: map[string][]float64{}}
	for _, ci := range f.NumericColumns() {
		name := f.Col(ci).Name()
		sorted, err := f.SortedNumeric(name)
		if err != nil || len(sorted) < 20 {
			continue // too many NULLs for stable thresholds
		}
		// Degenerate columns (near-constant) cannot produce a two-sided
		// split at any quantile in [qMin, qMax].
		if stats.Quantile(sorted, qMin) >= stats.Quantile(sorted, qMax) {
			continue
		}
		tbl.eligible = append(tbl.eligible, name)
		tbl.sorted[name] = sorted
	}
	if len(tbl.eligible) == 0 {
		return ScheduleTable{}, fmt.Errorf("load: table %q has no columns eligible for threshold queries", t.Name)
	}
	return tbl, nil
}

// drawSQL generates one threshold query: a uniformly drawn eligible column
// at a uniformly drawn quantile. The threshold is printed with 'g'/-1
// formatting, which the SQL lexer round-trips exactly.
func (t *ScheduleTable) drawSQL(r *randx.Source) string {
	col := t.eligible[r.Intn(len(t.eligible))]
	q := qMin + r.Float64()*(qMax-qMin)
	thr := stats.Quantile(t.sorted[col], q)
	return fmt.Sprintf("SELECT * FROM %s WHERE %s >= %s",
		t.Frame.Name(), col, strconv.FormatFloat(thr, 'g', -1, 64))
}

// sqlColumn recovers the WHERE column of a generated threshold query — the
// token after WHERE; generated SQL always has exactly one predicate.
func sqlColumn(sql string) string {
	fields := strings.Fields(sql)
	for i, f := range fields {
		if f == "WHERE" && i+1 < len(fields) {
			return fields[i+1]
		}
	}
	return ""
}

// drawMode samples the phase's engine-mode mix.
func drawMode(r *randx.Source, modes []ModeWeight) Mode {
	if len(modes) == 0 {
		return Mode{}
	}
	if len(modes) == 1 {
		return modes[0].Mode
	}
	w := make([]float64, len(modes))
	for i, mw := range modes {
		w[i] = mw.Weight
	}
	return modes[r.Categorical(w)].Mode
}

// drawThink samples the inter-request pause. Burst phases fire back to
// back regardless of the configured distribution.
func drawThink(r *randx.Source, p Phase) time.Duration {
	if p.Kind == KindBurst {
		return 0
	}
	switch p.Think.Kind {
	case ThinkFixed:
		return p.Think.A
	case ThinkUniform:
		return p.Think.A + time.Duration(r.Float64()*float64(p.Think.B-p.Think.A))
	case ThinkExp:
		return time.Duration(r.ExpFloat64() * float64(p.Think.A))
	default:
		return 0
	}
}

// TotalRequests returns the number of scheduled requests.
func (s *Schedule) TotalRequests() int {
	n := 0
	for _, reqs := range s.Sessions {
		n += len(reqs)
	}
	return n
}

// Render prints the schedule canonically, one request per line — the
// artifact the determinism tests (and zigload -schedule-only) compare.
func (s *Schedule) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %s seed=%d sessions=%d requests=%d\n",
		s.Spec.Name, s.Seed, len(s.Sessions), s.TotalRequests())
	for si, reqs := range s.Sessions {
		for i, r := range reqs {
			fmt.Fprintf(&b, "s%d/%d %s %s mode=%s ex=%t skip=%t approx=%t think=%s %s\n",
				si, i, r.Phase, r.Table, r.Mode, r.Exclude, r.SkipCache, r.Approx, r.Think, r.SQL)
		}
	}
	return b.String()
}

// Hash returns the FNV-64a hash of the canonical rendering, hex-encoded —
// the schedule-identity fingerprint BENCH_serving.json records and
// benchdiff compares against the baseline.
func (s *Schedule) Hash() string {
	h := fnv.New64a()
	h.Write([]byte(s.Render()))
	return fmt.Sprintf("%016x", h.Sum64())
}
