package load

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"
)

// DriverConfig tunes the replay.
type DriverConfig struct {
	// ThinkScale multiplies every scheduled think time; 0 means 1.0, so
	// the zero value replays the spec as written. CI uses small fractions
	// to compress wall time without changing the schedule.
	ThinkScale float64
	// MaxRetries bounds re-attempts of a shed request (0 = 10). A request
	// still shed after the budget counts as Failed.
	MaxRetries int
	// RetryCap bounds one backoff sleep (0 = 2s): the driver honors the
	// server's Retry-After hint but will not stall a session for the full
	// 30s clamp maximum.
	RetryCap time.Duration
}

func (c DriverConfig) thinkScale() float64 {
	if c.ThinkScale == 0 {
		return 1
	}
	return c.ThinkScale
}

func (c DriverConfig) maxRetries() int {
	if c.MaxRetries == 0 {
		return 10
	}
	return c.MaxRetries
}

func (c DriverConfig) retryCap() time.Duration {
	if c.RetryCap == 0 {
		return 2 * time.Second
	}
	return c.RetryCap
}

// Mismatch records one byte-identity violation: a repeat of a request that
// produced different normalized bytes than its first serving.
type Mismatch struct {
	Key     string
	Session int
}

// Result aggregates one replay.
type Result struct {
	// Target is the target's Name().
	Target string
	// Requests is the scheduled request count; Attempts includes shed
	// re-attempts.
	Requests int64
	Attempts int64
	// Sheds counts shed responses (each adds an attempt); Retried counts
	// requests that were shed at least once but eventually served; Failed
	// counts requests never served (shed budget exhausted or hard error).
	Sheds   int64
	Retried int64
	Failed  int64
	// FirstError preserves the first hard (non-shed) error for reporting.
	FirstError string
	// CacheHits counts served requests answered by the report memo.
	CacheHits int64
	// ApproxServed counts requests answered with a sample-based approximate
	// report — explicitly requested or pressure-degraded by the server.
	ApproxServed int64
	// ByteMismatches counts repeat servings whose normalized bytes
	// differed from the first serving — must be zero. Approximate servings
	// are bucketed separately per configuration (see Outcome.ApproxKey) and
	// violations land in ApproxByteMismatches, equally required zero.
	ByteMismatches       int64
	ApproxByteMismatches int64
	Mismatches           []Mismatch
	// Latency aggregates per-request service latency (the successful
	// attempt only; backoff sleeps are excluded — they are measured by
	// RetryAfter* instead). ApproxLatency covers the approximate-served
	// subset, so the degraded path's latency is gated on its own.
	Latency       Histogram
	ApproxLatency Histogram
	// RetryAfterMin/Max bound the Retry-After hints observed on shed
	// responses; zero when nothing was shed.
	RetryAfterMin, RetryAfterMax time.Duration
	// Wall is the whole replay's wall-clock time.
	Wall time.Duration
}

// sessionState is one replay goroutine's private accumulator, merged into
// Result after the goroutine exits.
type sessionState struct {
	attempts, sheds, retried, failed, cacheHits int64
	approxServed                                int64
	firstErr                                    error
	latency                                     Histogram
	approxLatency                               Histogram
	raMin, raMax                                time.Duration
}

// Run replays the schedule against the target: one goroutine per session,
// scheduled think times between requests, Retry-After-honoring backoff on
// shed responses, and a byte-identity check of every repeated request.
func Run(sched *Schedule, target Target, cfg DriverConfig) (*Result, error) {
	res := &Result{Target: target.Name(), Requests: int64(sched.TotalRequests())}

	// firstBytes maps request identity → first served normalized bytes.
	// Shared across sessions: a repeat is a repeat no matter who issued it.
	var mu sync.Mutex
	firstBytes := map[string][]byte{}

	states := make([]sessionState, len(sched.Sessions))
	start := time.Now()
	var wg sync.WaitGroup
	for si := range sched.Sessions {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			st := &states[si]
			for i := range sched.Sessions[si] {
				req := &sched.Sessions[si][i]
				if req.Think > 0 {
					time.Sleep(time.Duration(float64(req.Think) * cfg.thinkScale()))
				}
				out, shed := runOne(target, req, cfg, st)
				if out == nil {
					continue // failed; already counted
				}
				if shed {
					st.retried++
				}
				if out.ReportCacheHit {
					st.cacheHits++
				}
				if out.ApproxKey != "" {
					st.approxServed++
				}
				// Byte identity is bucketed per (request, approximate
				// configuration): an exact serving and a sampled one may
				// differ, but every repeat under the same serving
				// configuration must reproduce the first bytes.
				key := requestKey(req) + "|served=" + out.ApproxKey
				mu.Lock()
				prev, ok := firstBytes[key]
				if !ok {
					firstBytes[key] = out.Bytes
				} else if !bytes.Equal(prev, out.Bytes) {
					if out.ApproxKey != "" {
						res.ApproxByteMismatches++
					} else {
						res.ByteMismatches++
					}
					if len(res.Mismatches) < 8 {
						res.Mismatches = append(res.Mismatches, Mismatch{Key: key, Session: si})
					}
				}
				mu.Unlock()
			}
		}(si)
	}
	wg.Wait()
	res.Wall = time.Since(start)

	for i := range states {
		st := &states[i]
		res.Attempts += st.attempts
		res.Sheds += st.sheds
		res.Retried += st.retried
		res.Failed += st.failed
		res.CacheHits += st.cacheHits
		res.ApproxServed += st.approxServed
		res.Latency.Merge(&st.latency)
		res.ApproxLatency.Merge(&st.approxLatency)
		if st.raMax > 0 && (res.RetryAfterMax == 0 || st.raMax > res.RetryAfterMax) {
			res.RetryAfterMax = st.raMax
		}
		if st.raMin > 0 && (res.RetryAfterMin == 0 || st.raMin < res.RetryAfterMin) {
			res.RetryAfterMin = st.raMin
		}
		if st.firstErr != nil && res.FirstError == "" {
			res.FirstError = st.firstErr.Error()
		}
	}
	return res, nil
}

// runOne executes one request with shed backoff. It returns the outcome
// (nil if the request ultimately failed) and whether it was shed at least
// once before succeeding.
func runOne(target Target, req *Request, cfg DriverConfig, st *sessionState) (*Outcome, bool) {
	shedOnce := false
	for attempt := 0; ; attempt++ {
		st.attempts++
		begin := time.Now()
		out, err := target.Do(req)
		if err == nil {
			elapsed := time.Since(begin)
			st.latency.Observe(elapsed)
			if out.ApproxKey != "" {
				st.approxLatency.Observe(elapsed)
			}
			return out, shedOnce
		}
		var shed *ShedError
		if !errors.As(err, &shed) {
			st.failed++
			if st.firstErr == nil {
				st.firstErr = fmt.Errorf("%s: %w", req.SQL, err)
			}
			return nil, shedOnce
		}
		shedOnce = true
		st.sheds++
		if st.raMin == 0 || shed.RetryAfter < st.raMin {
			st.raMin = shed.RetryAfter
		}
		if shed.RetryAfter > st.raMax {
			st.raMax = shed.RetryAfter
		}
		if attempt >= cfg.maxRetries() {
			st.failed++
			if st.firstErr == nil {
				st.firstErr = fmt.Errorf("%s: shed %d times, retry budget exhausted", req.SQL, attempt+1)
			}
			return nil, shedOnce
		}
		// Honor the server's hint, bounded so one session never stalls for
		// the router's full 30s clamp.
		time.Sleep(min(shed.RetryAfter, cfg.retryCap()))
	}
}

// requestKey is the byte-identity grouping: requests that must produce
// identical normalized bytes. SkipCache is excluded on purpose — bypassing
// the cache must not change the answer.
func requestKey(req *Request) string {
	return fmt.Sprintf("%s|ex=%t|mode=%s", req.SQL, req.Exclude, req.Mode)
}

// ShedRate returns Sheds/Attempts.
func (r *Result) ShedRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.Sheds) / float64(r.Attempts)
}

// CacheHitRate returns CacheHits over served requests.
func (r *Result) CacheHitRate() float64 {
	served := r.Requests - r.Failed
	if served <= 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(served)
}

// ApproxRate returns ApproxServed over served requests.
func (r *Result) ApproxRate() float64 {
	served := r.Requests - r.Failed
	if served <= 0 {
		return 0
	}
	return float64(r.ApproxServed) / float64(served)
}
