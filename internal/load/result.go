package load

import (
	"encoding/json"
	"fmt"
	"time"
)

// LatencyMs is the percentile summary BENCH_serving.json records, in
// milliseconds.
type LatencyMs struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// RetryAfterMs bounds the Retry-After hints observed on shed responses.
type RetryAfterMs struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// ServingRecord is the machine-readable outcome of one replay — the
// BENCH_serving.json shape `benchdiff serving` gates against a checked-in
// baseline.
type ServingRecord struct {
	// Spec and Seed identify the workload; ScheduleHash proves the run
	// replayed exactly the traffic the baseline did.
	Spec         string `json:"spec"`
	Seed         uint64 `json:"seed"`
	Target       string `json:"target"`
	ScheduleHash string `json:"scheduleHash"`
	Sessions     int    `json:"sessions"`

	Requests       int64 `json:"requests"`
	Attempts       int64 `json:"attempts"`
	Sheds          int64 `json:"sheds"`
	Retried        int64 `json:"retried"`
	Failed         int64 `json:"failed"`
	ByteMismatches int64 `json:"byteMismatches"`
	// ApproxServed counts requests answered with a flagged sample-based
	// approximate report; ApproxByteMismatches counts repeat approximate
	// servings (same request, same approximate configuration) whose bytes
	// differed — a determinism violation the gate hard-fails on.
	ApproxServed         int64 `json:"approxServed"`
	ApproxByteMismatches int64 `json:"approxByteMismatches"`
	ModesCollapsed       int64 `json:"modesCollapsed,omitempty"`

	CacheHitRate float64 `json:"cacheHitRate"`
	ShedRate     float64 `json:"shedRate"`
	ApproxRate   float64 `json:"approxRate"`

	LatencyMs LatencyMs `json:"latencyMs"`
	// ApproxLatencyMs covers the approximate-served subset; zero when no
	// request was served approximately.
	ApproxLatencyMs LatencyMs    `json:"approxLatencyMs"`
	RetryAfterMs    RetryAfterMs `json:"retryAfterMs"`

	WallMs float64 `json:"wallMs"`
	// FirstError carries the first hard error for diagnosis; empty on a
	// clean run.
	FirstError string `json:"firstError,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// NewServingRecord folds a schedule and its replay result into the
// serializable record. modesCollapsed is HTTPTarget.ModesCollapsed (zero
// for in-process targets).
func NewServingRecord(sched *Schedule, res *Result, modesCollapsed int64) *ServingRecord {
	return &ServingRecord{
		Spec:                 sched.Spec.Name,
		Seed:                 sched.Seed,
		Target:               res.Target,
		ScheduleHash:         sched.Hash(),
		Sessions:             len(sched.Sessions),
		Requests:             res.Requests,
		Attempts:             res.Attempts,
		Sheds:                res.Sheds,
		Retried:              res.Retried,
		Failed:               res.Failed,
		ByteMismatches:       res.ByteMismatches,
		ApproxServed:         res.ApproxServed,
		ApproxByteMismatches: res.ApproxByteMismatches,
		ModesCollapsed:       modesCollapsed,
		CacheHitRate:         res.CacheHitRate(),
		ShedRate:             res.ShedRate(),
		ApproxRate:           res.ApproxRate(),
		LatencyMs: LatencyMs{
			P50: ms(res.Latency.Quantile(0.50)),
			P90: ms(res.Latency.Quantile(0.90)),
			P95: ms(res.Latency.Quantile(0.95)),
			P99: ms(res.Latency.Quantile(0.99)),
			Max: ms(res.Latency.Max()),
		},
		ApproxLatencyMs: LatencyMs{
			P50: ms(res.ApproxLatency.Quantile(0.50)),
			P90: ms(res.ApproxLatency.Quantile(0.90)),
			P95: ms(res.ApproxLatency.Quantile(0.95)),
			P99: ms(res.ApproxLatency.Quantile(0.99)),
			Max: ms(res.ApproxLatency.Max()),
		},
		RetryAfterMs: RetryAfterMs{Min: ms(res.RetryAfterMin), Max: ms(res.RetryAfterMax)},
		WallMs:       ms(res.Wall),
		FirstError:   res.FirstError,
	}
}

// EncodeServingRecord renders the record as indented JSON with a trailing
// newline, the on-disk BENCH_serving.json format.
func EncodeServingRecord(rec *ServingRecord) ([]byte, error) {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeServingRecord parses a BENCH_serving.json payload.
func DecodeServingRecord(data []byte) (*ServingRecord, error) {
	var rec ServingRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("load: parsing serving record: %w", err)
	}
	if rec.Spec == "" || rec.ScheduleHash == "" {
		return nil, fmt.Errorf("load: serving record missing spec/scheduleHash")
	}
	return &rec, nil
}
