package load

import (
	"fmt"
	"math/bits"
	"time"
)

// The latency histogram is a fixed-layout log2 histogram over nanosecond
// durations, in the spirit of HDR histograms: values below 2^histSubBits
// get exact unit buckets, and every octave above is split into
// 2^histSubBits linear sub-buckets, bounding the relative quantization
// error at 1/2^histSubBits (~3.1%). Because the layout is a pure function
// of the value — no dynamic rescaling — histograms recorded by different
// sessions (or different processes) merge by adding counts, and
// Merge(h1, h2) is exactly the histogram of the union of the samples.
const (
	// histSubBits is the number of linear sub-bucket bits per octave.
	histSubBits = 5
	histSubSize = 1 << histSubBits // sub-buckets per octave
	// histBuckets spans the full non-negative int64 nanosecond domain:
	// values < histSubSize take the first histSubSize unit buckets, and
	// exponents histSubBits..62 each contribute histSubSize sub-buckets.
	histBuckets = histSubSize * (63 - histSubBits + 1)
)

// Histogram is a fixed-bucket log2 latency histogram. The zero value is
// ready to use. It is not safe for concurrent use; the driver records into
// per-session histograms and merges them afterwards.
type Histogram struct {
	counts [histBuckets]int64
	total  int64
	// min and max are tracked exactly so the extremes survive bucketing.
	min, max time.Duration
}

// bucketIndex maps a non-negative nanosecond value to its bucket. Negative
// values (a clock anomaly) clamp to bucket 0.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubSize {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= histSubBits
	shift := exp - histSubBits
	sub := int(uint64(v)>>shift) & (histSubSize - 1)
	return (shift+1)*histSubSize + sub
}

// bucketBounds returns the inclusive [lo, hi] nanosecond range of a bucket.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < histSubSize {
		return int64(idx), int64(idx)
	}
	shift := idx/histSubSize - 1
	sub := idx % histSubSize
	lo = int64(histSubSize+sub) << shift
	hi = lo + (int64(1) << shift) - 1
	return lo, hi
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketIndex(int64(d))]++
	if h.total == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.total++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total }

// Min and Max return the exact extremes of the recorded samples (0 when
// empty).
func (h *Histogram) Min() time.Duration { return h.min }
func (h *Histogram) Max() time.Duration { return h.max }

// Merge adds other's samples into h. The fixed layout makes this exact:
// merging two histograms yields the same counts as recording both sample
// sets into one.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) as the upper bound of the
// bucket holding the rank-⌊q·(n−1)⌋ sample — the same rank a sort-based
// estimator reads at sorted[⌊q·(n−1)⌋], so the exact value always lies
// within the returned bucket (≤ the returned figure, ≥ it minus the bucket
// width; relative error ≤ 1/2^histSubBits). Returns 0 on an empty
// histogram; q=1 reports the exact maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// rank is 1-based: the (rank)-th smallest sample.
	rank := int64(q*float64(h.total-1)) + 1
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			_, hi := bucketBounds(i)
			if d := time.Duration(hi); d <= h.max {
				return d
			}
			// The bucket's upper bound can overshoot the true maximum; the
			// exact extreme is a tighter answer.
			return h.max
		}
	}
	return h.max
}

// QuantileBounds returns the inclusive nanosecond bounds of the bucket the
// q-th quantile falls in — the bracketing guarantee the differential tests
// assert against sort-based exact percentiles.
func (h *Histogram) QuantileBounds(q float64) (lo, hi time.Duration) {
	if h.total == 0 {
		return 0, 0
	}
	if q <= 0 {
		return h.min, h.min
	}
	if q >= 1 {
		return h.max, h.max
	}
	rank := int64(q*float64(h.total-1)) + 1
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			l, u := bucketBounds(i)
			return time.Duration(l), time.Duration(u)
		}
	}
	return h.max, h.max
}

// String renders the key percentiles for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v max=%v",
		h.total, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.max)
}
