package load

import (
	"strings"
	"testing"
	"time"
)

// sampleSpec exercises every directive, dataset, phase kind, think
// distribution and mode-mix feature the format supports.
const sampleSpec = `# exploration workload: two colleagues plus a robot sweeping thresholds
zigload v1
name kitchen_sink
sessions 6

table uscrime seed=11
table boxoffice name=movies seed=2
table micro name=m1 seed=7 rows=400 cols=10

phase warm kind=repeat requests=5 think=exp:2ms pool=3 exclude=0.5
phase sweep kind=churn requests=4 think=uniform:0s,4ms skipcache=1
phase rush kind=burst requests=8 think=none modes=robust:1,default:3
phase cool kind=repeat requests=2 think=fixed:1ms modes=robust-extended:0.5,extended:2
`

func TestSpecParse(t *testing.T) {
	s, err := Parse(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "kitchen_sink" || s.Sessions != 6 {
		t.Errorf("header fields: name=%q sessions=%d", s.Name, s.Sessions)
	}
	if len(s.Tables) != 3 || len(s.Phases) != 4 {
		t.Fatalf("got %d tables, %d phases", len(s.Tables), len(s.Phases))
	}
	if s.Tables[1].Name != "movies" || s.Tables[1].Dataset != DatasetBoxOffice {
		t.Errorf("table rename: %+v", s.Tables[1])
	}
	if s.Tables[0].Name != "uscrime" {
		t.Errorf("default table name: %+v", s.Tables[0])
	}
	if m := s.Tables[2]; m.Rows != 400 || m.Cols != 10 || m.Seed != 7 {
		t.Errorf("micro table: %+v", m)
	}
	warm := s.Phases[0]
	if warm.Kind != KindRepeat || warm.Requests != 5 || warm.Pool != 3 || warm.Exclude != 0.5 {
		t.Errorf("warm phase: %+v", warm)
	}
	if warm.Think != (ThinkDist{Kind: ThinkExp, A: 2 * time.Millisecond}) {
		t.Errorf("warm think: %+v", warm.Think)
	}
	if sweep := s.Phases[1]; sweep.SkipCache != 1 || sweep.Think.Kind != ThinkUniform || sweep.Think.B != 4*time.Millisecond {
		t.Errorf("sweep phase: %+v", sweep)
	}
	// Mode mixes come back in canonical order regardless of input order.
	rush := s.Phases[2]
	want := []ModeWeight{{Mode{}, 3}, {Mode{Robust: true}, 1}}
	if len(rush.Modes) != 2 || rush.Modes[0] != want[0] || rush.Modes[1] != want[1] {
		t.Errorf("rush modes: %+v", rush.Modes)
	}
	// TotalRequests = sessions × Σ phase requests.
	if got := s.TotalRequests(); got != 6*(5+4+8+2) {
		t.Errorf("TotalRequests = %d", got)
	}
	// Modes() unions the mixes, in canonical order, including the implicit
	// default of mode-less phases.
	modes := s.Modes()
	wantModes := []Mode{{}, {Robust: true}, {Extended: true}, {Robust: true, Extended: true}}
	if len(modes) != len(wantModes) {
		t.Fatalf("Modes() = %v", modes)
	}
	for i := range modes {
		if modes[i] != wantModes[i] {
			t.Errorf("Modes()[%d] = %v, want %v", i, modes[i], wantModes[i])
		}
	}
}

// TestSpecRoundTrip pins the canonical-print property: parse → print →
// parse → print is a fixed point after the first print.
func TestSpecRoundTrip(t *testing.T) {
	s1, err := Parse(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	text1 := s1.String()
	s2, err := Parse(text1)
	if err != nil {
		t.Fatalf("reparse of canonical print failed: %v\n%s", err, text1)
	}
	if text2 := s2.String(); text2 != text1 {
		t.Errorf("canonical print not stable:\n--- first ---\n%s--- second ---\n%s", text1, text2)
	}
}

// TestSpecInvalid asserts malformed specs are rejected loudly, with the
// offending construct named in the error.
func TestSpecInvalid(t *testing.T) {
	valid := "zigload v1\nname ok\nsessions 2\ntable uscrime seed=1\nphase p kind=repeat requests=3 think=none\n"
	if _, err := Parse(valid); err != nil {
		t.Fatalf("baseline spec invalid: %v", err)
	}
	cases := []struct {
		name, spec, wantErr string
	}{
		{"empty", "", "missing"},
		{"no-header", "name x\n", "first directive"},
		{"bad-version", "zigload v9\nname x\n", "first directive"},
		{"unknown-directive", "zigload v1\nfrobnicate 3\n", "unknown directive"},
		{"duplicate-name", "zigload v1\nname a\nname b\n", "duplicate name"},
		{"bad-name", "zigload v1\nname 9lives\nsessions 1\ntable uscrime\nphase p kind=repeat requests=1 think=none\n", "not a valid identifier"},
		{"no-tables", "zigload v1\nname x\nsessions 1\nphase p kind=repeat requests=1 think=none\n", "no tables"},
		{"no-phases", "zigload v1\nname x\nsessions 1\ntable uscrime\n", "no phases"},
		{"zero-sessions", "zigload v1\nname x\nsessions 0\ntable uscrime\nphase p kind=repeat requests=1 think=none\n", "sessions"},
		{"unknown-dataset", "zigload v1\nname x\nsessions 1\ntable parquet\nphase p kind=repeat requests=1 think=none\n", "unknown dataset"},
		{"dup-table", "zigload v1\nname x\nsessions 1\ntable uscrime\ntable uscrime\nphase p kind=repeat requests=1 think=none\n", "duplicate table"},
		{"rows-on-fixed", "zigload v1\nname x\nsessions 1\ntable uscrime rows=100\nphase p kind=repeat requests=1 think=none\n", "only valid for micro"},
		{"micro-tiny", "zigload v1\nname x\nsessions 1\ntable micro rows=4 cols=4\nphase p kind=repeat requests=1 think=none\n", "rows"},
		{"unknown-kind", "zigload v1\nname x\nsessions 1\ntable uscrime\nphase p kind=shuffle requests=1 think=none\n", "unknown kind"},
		{"no-think", "zigload v1\nname x\nsessions 1\ntable uscrime\nphase p kind=repeat requests=1\n", "missing think"},
		{"bad-think", "zigload v1\nname x\nsessions 1\ntable uscrime\nphase p kind=repeat requests=1 think=sometimes\n", "think"},
		{"uniform-order", "zigload v1\nname x\nsessions 1\ntable uscrime\nphase p kind=repeat requests=1 think=uniform:5ms,1ms\n", "out of order"},
		{"prob-range", "zigload v1\nname x\nsessions 1\ntable uscrime\nphase p kind=repeat requests=1 think=none exclude=1.5\n", "probability"},
		{"dup-phase", "zigload v1\nname x\nsessions 1\ntable uscrime\nphase p kind=repeat requests=1 think=none\nphase p kind=churn requests=1 think=none\n", "duplicate phase"},
		{"bad-mode", "zigload v1\nname x\nsessions 1\ntable uscrime\nphase p kind=repeat requests=1 think=none modes=turbo:1\n", "unknown mode"},
		{"dup-mode", "zigload v1\nname x\nsessions 1\ntable uscrime\nphase p kind=repeat requests=1 think=none modes=robust:1,robust:2\n", "duplicate mode"},
		{"zero-weight-mix", "zigload v1\nname x\nsessions 1\ntable uscrime\nphase p kind=repeat requests=1 think=none modes=robust:0\n", "no positive weight"},
		{"unknown-phase-key", "zigload v1\nname x\nsessions 1\ntable uscrime\nphase p kind=repeat requests=1 think=none color=red\n", "unknown phase parameter"},
		{"unknown-table-key", "zigload v1\nname x\nsessions 1\ntable uscrime shape=round\nphase p kind=repeat requests=1 think=none\n", "unknown table parameter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.spec)
			if err == nil {
				t.Fatalf("spec accepted, want error mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
