// Package load is the IDEBench-style session-replay harness: a
// deterministic workload generator and replay driver that simulates N
// concurrent explorer sessions against any serving target — an in-process
// sharded router, or a real ziggyd front/worker deployment over HTTP.
//
// The design follows IDEBench's argument (PAPERS.md) that interactive data
// exploration systems must be judged on think-time-driven multi-query
// sessions rather than isolated queries: a zenvisage- or Ziggy-style
// explorer fires a query, stares at the views for a moment, then refines —
// and whole populations of such users hit the serving layer at once, some
// re-running queries their colleagues just ran (cache-friendly), some
// sweeping fresh thresholds (cache-hostile).
//
// The pieces:
//
//   - Spec (spec.go) is the parsed workload description: session count,
//     tables from internal/synth, and a sequence of phases, each with a
//     think-time distribution, a query-drawing policy (repeat pools vs
//     churn), and mixes of per-request options and engine modes
//     (default/robust/extended).
//   - Schedule (schedule.go) expands (Spec, seed) into the exact per-session
//     request sequences. Generation is a pure function of the pair: the same
//     spec and seed produce the identical schedule — rendered canonically
//     and hashed, so two runs (or a run and its checked-in baseline) can
//     assert they replayed the same traffic.
//   - Target (target.go) abstracts what is being driven: RouterTarget runs
//     requests on in-process shard routers (one per engine mode, sharing one
//     report cache), HTTPTarget posts them to a ziggyd front — the same
//     /api/characterize endpoint interactive users hit.
//   - Run (driver.go) replays a schedule: one goroutine per session, think
//     times between requests, Retry-After-honoring backoff on shed (503)
//     responses, per-request latency recorded into a mergeable Histogram
//     (hist.go), and byte-identity checks on every repeated request.
//
// The result serializes as BENCH_serving.json (result.go), which
// `benchdiff serving` gates against a checked-in baseline: latency
// percentiles, shed rate, cache hit rate, schedule identity, and zero
// byte-identity violations.
package load
