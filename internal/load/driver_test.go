package load

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// replaySpec mixes cache-friendly and cache-hostile traffic over two
// tables with option and mode variety — the determinism rail must hold
// across all of it.
const replaySpec = `zigload v1
name replay
sessions 4
table boxoffice seed=1
table micro name=m1 seed=5 rows=200 cols=8
phase warm kind=repeat requests=4 think=none pool=3 exclude=0.5
phase sweep kind=churn requests=2 think=none skipcache=0.5
phase again kind=repeat requests=3 think=none pool=3 modes=default:1,robust:1
`

// serveAll runs every scheduled request sequentially against a fresh
// router target with the given shard count and returns the normalized
// bytes per request identity.
func serveAll(t *testing.T, sched *Schedule, shards int) map[string][]byte {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Shards = shards
	target, err := NewRouterTarget(cfg, sched, shard.Params{})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	out := map[string][]byte{}
	for _, reqs := range sched.Sessions {
		for i := range reqs {
			req := &reqs[i]
			o, err := target.Do(req)
			if err != nil {
				t.Fatalf("request %q failed: %v", req.SQL, err)
			}
			key := requestKey(req)
			if prev, ok := out[key]; ok {
				if !bytes.Equal(prev, o.Bytes) {
					t.Fatalf("repeat of %q differed within one run (shards=%d)", key, shards)
				}
				continue
			}
			out[key] = o.Bytes
		}
	}
	return out
}

// TestReplayDeterminismAcrossShards extends the remote-determinism rail to
// driven traffic: the same (spec, seed) produces the identical request
// schedule, and every request's normalized report bytes are identical
// whether 1, 2 or 4 shards serve it.
func TestReplayDeterminismAcrossShards(t *testing.T) {
	spec, err := Parse(replaySpec)
	if err != nil {
		t.Fatal(err)
	}
	var baseline map[string][]byte
	var baseHash string
	for _, shards := range []int{1, 2, 4} {
		sched, err := BuildSchedule(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		if baseHash == "" {
			baseHash = sched.Hash()
		} else if sched.Hash() != baseHash {
			t.Fatalf("schedule hash changed across builds: %s vs %s", sched.Hash(), baseHash)
		}
		served := serveAll(t, sched, shards)
		if baseline == nil {
			baseline = served
			continue
		}
		if len(served) != len(baseline) {
			t.Fatalf("shards=%d served %d distinct requests, baseline %d", shards, len(served), len(baseline))
		}
		for key, want := range baseline {
			got, ok := served[key]
			if !ok {
				t.Fatalf("shards=%d missing request %q", shards, key)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("shards=%d: report bytes for %q differ from 1-shard baseline", shards, key)
			}
		}
	}
}

// TestDriverRun replays concurrently through the full driver and checks
// the aggregate result invariants.
func TestDriverRun(t *testing.T) {
	sched := mustSchedule(t, replaySpec, 1)
	cfg := core.DefaultConfig()
	cfg.Shards = 2
	target, err := NewRouterTarget(cfg, sched, shard.Params{})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	res, err := Run(sched, target, DriverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed = %d (%s)", res.Failed, res.FirstError)
	}
	if res.ByteMismatches != 0 {
		t.Fatalf("byte mismatches: %d (%v)", res.ByteMismatches, res.Mismatches)
	}
	if res.Requests != int64(sched.TotalRequests()) {
		t.Errorf("requests = %d, want %d", res.Requests, sched.TotalRequests())
	}
	if res.Latency.Count() != res.Requests {
		t.Errorf("latency samples = %d, want %d", res.Latency.Count(), res.Requests)
	}
	// Repeat phases with a shared pool must produce report-cache hits:
	// 4 sessions × pool of 3 queries per table.
	if res.CacheHits == 0 {
		t.Error("no report-cache hits despite repeat phases")
	}
	rec := NewServingRecord(sched, res, 0)
	if rec.ScheduleHash != sched.Hash() || rec.Spec != "replay" {
		t.Errorf("record identity: %+v", rec)
	}
	enc, err := EncodeServingRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeServingRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if *dec != *rec {
		t.Errorf("serving record did not round-trip:\n%+v\n%+v", rec, dec)
	}
}

// TestDriverSaturation drives a burst at a deliberately tiny admission
// queue (concurrency 1, depth 1): the driver must observe sheds, the
// Retry-After hints must respect the router's [25ms, 30s] clamp, and
// every shed request must eventually succeed after honoring the backoff —
// the client-side pin of the PR-6 retryAfter clamp.
func TestDriverSaturation(t *testing.T) {
	// Churn on the widest fixed dataset keeps every request on the real
	// pipeline (~5ms on this class of machine) — long enough for sessions
	// to overlap and the 1-deep queue to shed.
	spec, err := Parse(`zigload v1
name burst
sessions 8
table uscrime seed=3
phase rush kind=burst requests=5 think=none skipcache=1
`)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Shards = 1
	target, err := NewRouterTarget(cfg, sched, shard.Params{Concurrency: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	res, err := Run(sched, target, DriverConfig{MaxRetries: 100, RetryCap: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sheds == 0 {
		t.Fatal("burst against a 1-deep queue observed no sheds")
	}
	if res.Failed != 0 {
		t.Fatalf("failed = %d after backoff (%s)", res.Failed, res.FirstError)
	}
	if res.ByteMismatches != 0 {
		t.Fatalf("byte mismatches under saturation: %d", res.ByteMismatches)
	}
	if res.RetryAfterMin < 25*time.Millisecond || res.RetryAfterMax > 30*time.Second {
		t.Errorf("Retry-After outside clamp: [%v, %v]", res.RetryAfterMin, res.RetryAfterMax)
	}
	// The server-side counters agree something was shed.
	rejected := int64(0)
	for _, stats := range target.Stats() {
		for _, sh := range stats.Shards {
			rejected += sh.Rejected
		}
	}
	if rejected == 0 {
		t.Error("router counters show no rejections despite client-side sheds")
	}
}

// TestDriverSaturationDegradesNotSheds replays the identical burst with
// ApproxUnderPressure on: the same traffic that shed above must now shed
// nothing — every request that would have been rejected is served a
// flagged approximate answer instead — with byte identity intact in both
// buckets and the server's rejection counters at zero.
func TestDriverSaturationDegradesNotSheds(t *testing.T) {
	spec, err := Parse(`zigload v1
name burst
sessions 8
table uscrime seed=3
phase rush kind=burst requests=5 think=none skipcache=1
`)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Shards = 1
	cfg.ApproxUnderPressure = true
	target, err := NewRouterTarget(cfg, sched, shard.Params{Concurrency: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	res, err := Run(sched, target, DriverConfig{MaxRetries: 100, RetryCap: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sheds != 0 || res.Retried != 0 {
		t.Fatalf("degrade mode still shed: sheds=%d retried=%d", res.Sheds, res.Retried)
	}
	if res.Failed != 0 {
		t.Fatalf("failed = %d (%s)", res.Failed, res.FirstError)
	}
	// The burst overwhelms a 1-deep queue, so some requests must have been
	// degraded to flagged approximate answers.
	if res.ApproxServed == 0 {
		t.Fatal("burst against a 1-deep queue degraded nothing")
	}
	if res.ByteMismatches != 0 || res.ApproxByteMismatches != 0 {
		t.Fatalf("byte mismatches under degrade: %d exact, %d approximate",
			res.ByteMismatches, res.ApproxByteMismatches)
	}
	var rejected, approxServed int64
	for _, stats := range target.Stats() {
		for _, sh := range stats.Shards {
			rejected += sh.Rejected
			approxServed += sh.ApproxServed
		}
	}
	if rejected != 0 {
		t.Errorf("server rejected %d requests despite degrade mode", rejected)
	}
	if approxServed < res.ApproxServed {
		t.Errorf("server counted %d approximate servings, client saw %d", approxServed, res.ApproxServed)
	}
}
