package load

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The workload spec is a small line-based text format, designed to be
// pinned in version control next to the serving baseline it produced:
//
//	zigload v1
//	name ci-short
//	sessions 8
//	table boxoffice seed=1
//	table micro name=m1 rows=400 cols=10 seed=7
//	phase warm kind=repeat requests=6 think=exp:2ms pool=4 exclude=0.5
//	phase sweep kind=churn requests=4 think=uniform:0s,4ms skipcache=1
//	phase rush kind=burst requests=10 think=none modes=default:3,robust:1
//
// Parsing is strict — unknown directives, unknown keys, duplicate
// directives and out-of-range values are all errors, never silently
// ignored — and printing is canonical: String emits every field in a fixed
// order and format, so Parse(String(spec)) reproduces String(spec) exactly
// (the round-trip property FuzzWorkloadSpec pins).

// specHeader is the required first directive; the version is part of it so
// the format can evolve without old drivers misreading new specs.
const specHeader = "zigload v1"

// Mode selects the engine configuration a request runs under. The serving
// layer runs one router per mode (sharing one report cache), modeling a
// population of explorers where some work in robust or extended mode.
type Mode struct {
	Robust   bool
	Extended bool
}

// modeOrder is the canonical printing order.
var modeOrder = []Mode{{false, false}, {true, false}, {false, true}, {true, true}}

// String names the mode: default, robust, extended, robust-extended.
func (m Mode) String() string {
	switch m {
	case Mode{}:
		return "default"
	case Mode{Robust: true}:
		return "robust"
	case Mode{Extended: true}:
		return "extended"
	default:
		return "robust-extended"
	}
}

// parseMode inverts Mode.String.
func parseMode(s string) (Mode, error) {
	for _, m := range modeOrder {
		if m.String() == s {
			return m, nil
		}
	}
	return Mode{}, fmt.Errorf("unknown mode %q (want default, robust, extended or robust-extended)", s)
}

// ModeWeight is one entry of a phase's engine-mode mix.
type ModeWeight struct {
	Mode   Mode
	Weight float64
}

// ThinkKind selects a think-time distribution family.
type ThinkKind int

const (
	// ThinkNone issues requests back to back — the burst shape.
	ThinkNone ThinkKind = iota
	// ThinkFixed pauses exactly A between requests.
	ThinkFixed
	// ThinkUniform pauses uniformly in [A, B].
	ThinkUniform
	// ThinkExp pauses exponentially with mean A — IDEBench's think-time
	// model for exploratory sessions.
	ThinkExp
)

// ThinkDist is a think-time distribution: the pause a simulated explorer
// takes between receiving a result and issuing the next query.
type ThinkDist struct {
	Kind ThinkKind
	A, B time.Duration
}

// String renders the canonical form: none, fixed:2ms, uniform:1ms,10ms,
// exp:5ms.
func (d ThinkDist) String() string {
	switch d.Kind {
	case ThinkNone:
		return "none"
	case ThinkFixed:
		return "fixed:" + d.A.String()
	case ThinkUniform:
		return "uniform:" + d.A.String() + "," + d.B.String()
	case ThinkExp:
		return "exp:" + d.A.String()
	default:
		return fmt.Sprintf("ThinkKind(%d)", int(d.Kind))
	}
}

// parseThink inverts ThinkDist.String.
func parseThink(s string) (ThinkDist, error) {
	if s == "none" {
		return ThinkDist{Kind: ThinkNone}, nil
	}
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return ThinkDist{}, fmt.Errorf("think %q: want none, fixed:<dur>, uniform:<dur>,<dur> or exp:<dur>", s)
	}
	parseDur := func(s string) (time.Duration, error) {
		d, err := time.ParseDuration(s)
		if err != nil {
			return 0, fmt.Errorf("think duration %q: %v", s, err)
		}
		if d < 0 {
			return 0, fmt.Errorf("think duration %q is negative", s)
		}
		return d, nil
	}
	switch kind {
	case "fixed", "exp":
		a, err := parseDur(rest)
		if err != nil {
			return ThinkDist{}, err
		}
		k := ThinkFixed
		if kind == "exp" {
			k = ThinkExp
		}
		return ThinkDist{Kind: k, A: a}, nil
	case "uniform":
		lo, hi, ok := strings.Cut(rest, ",")
		if !ok {
			return ThinkDist{}, fmt.Errorf("think %q: uniform wants two durations", s)
		}
		a, err := parseDur(lo)
		if err != nil {
			return ThinkDist{}, err
		}
		b, err := parseDur(hi)
		if err != nil {
			return ThinkDist{}, err
		}
		if a > b {
			return ThinkDist{}, fmt.Errorf("think %q: uniform bounds out of order", s)
		}
		return ThinkDist{Kind: ThinkUniform, A: a, B: b}, nil
	default:
		return ThinkDist{}, fmt.Errorf("unknown think distribution %q", kind)
	}
}

// Table datasets a spec can reference. The named ones are the synthetic
// twins of the paper's demo datasets; micro is the size-parameterized
// generator for fast load tests.
const (
	DatasetUSCrime    = "uscrime"
	DatasetBoxOffice  = "boxoffice"
	DatasetInnovation = "innovation"
	DatasetMicro      = "micro"
)

// TableSpec names one synthetic table of the workload's mixed-table set.
type TableSpec struct {
	// Dataset is uscrime, boxoffice, innovation or micro.
	Dataset string
	// Name is the registered table name (defaults to the dataset name).
	// An HTTP target must serve a table of this name with identical
	// content, i.e. the deployment must register the same dataset/seed.
	Name string
	// Seed drives the deterministic generator.
	Seed uint64
	// Rows and Cols size a micro table; fixed-size datasets reject them.
	Rows, Cols int
}

// Phase kinds: the query-drawing policy.
const (
	// KindRepeat draws queries from a small per-table pool shared by every
	// session — the cache-friendly shape (colleagues re-running each
	// other's queries).
	KindRepeat = "repeat"
	// KindChurn draws a fresh, previously unseen query for every request —
	// the cache-hostile threshold sweep.
	KindChurn = "churn"
	// KindBurst is KindRepeat fired back to back (think time ignored): the
	// arrival spike that drives admission queues into shedding.
	KindBurst = "burst"
)

// Phase is one stage of every session: a number of requests drawn under
// one policy, think-time distribution and option mix.
type Phase struct {
	Name string
	// Kind is repeat, churn or burst.
	Kind string
	// Requests is the number of requests per session in this phase.
	Requests int
	// Think is the inter-request pause distribution (ignored by burst).
	Think ThinkDist
	// Pool is the number of distinct queries per table the repeat/burst
	// pool holds (default 4; churn ignores it).
	Pool int
	// Exclude is the probability a request sets excludePredicate — the
	// option interactive users toggle to keep the WHERE columns out of the
	// views.
	Exclude float64
	// SkipCache is the probability a request bypasses the report cache
	// (Options.SkipReportCache), forcing the full pipeline even on a
	// repeated query.
	SkipCache float64
	// Approx is the probability a request asks for a sample-based
	// approximate answer (the characterize "approximate" field) — the
	// explorer population that prefers a fast flagged sketch over the
	// full-precision report.
	Approx float64
	// Modes is the engine-mode mix, canonically ordered; empty means all
	// requests run in default mode.
	Modes []ModeWeight
}

// Spec is a parsed workload description.
type Spec struct {
	// Name labels the workload; the serving gate requires the baseline and
	// the current run to agree on it.
	Name string
	// Sessions is the number of concurrent simulated explorer sessions.
	Sessions int
	Tables   []TableSpec
	Phases   []Phase
}

// validIdent reports whether s is a safe identifier (letters, digits,
// underscore, starting with a letter or underscore) — table and phase
// names end up inside generated SQL and file names.
func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// fmtFloat prints probabilities and weights canonically.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String renders the canonical spec text: every field explicit, fixed
// order, defaults included. Parse(String(s)) yields a spec that prints the
// same bytes.
func (s *Spec) String() string {
	var b strings.Builder
	b.WriteString(specHeader + "\n")
	fmt.Fprintf(&b, "name %s\n", s.Name)
	fmt.Fprintf(&b, "sessions %d\n", s.Sessions)
	for _, t := range s.Tables {
		fmt.Fprintf(&b, "table %s name=%s seed=%d", t.Dataset, t.Name, t.Seed)
		if t.Dataset == DatasetMicro {
			fmt.Fprintf(&b, " rows=%d cols=%d", t.Rows, t.Cols)
		}
		b.WriteByte('\n')
	}
	for _, p := range s.Phases {
		fmt.Fprintf(&b, "phase %s kind=%s requests=%d think=%s pool=%d exclude=%s skipcache=%s approx=%s",
			p.Name, p.Kind, p.Requests, p.Think, p.Pool, fmtFloat(p.Exclude), fmtFloat(p.SkipCache), fmtFloat(p.Approx))
		if len(p.Modes) > 0 {
			parts := make([]string, len(p.Modes))
			for i, mw := range p.Modes {
				parts[i] = mw.Mode.String() + ":" + fmtFloat(mw.Weight)
			}
			fmt.Fprintf(&b, " modes=%s", strings.Join(parts, ","))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// kv splits one key=value parameter.
func kv(field string) (key, val string, err error) {
	key, val, ok := strings.Cut(field, "=")
	if !ok || key == "" || val == "" {
		return "", "", fmt.Errorf("malformed parameter %q (want key=value)", field)
	}
	return key, val, nil
}

// parseProb parses a probability in [0, 1].
func parseProb(key, val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("%s=%q: want a probability in [0, 1]", key, val)
	}
	return p, nil
}

// Parse reads a workload spec, rejecting anything it does not fully
// understand. The returned spec is validated and canonicalized (mode mixes
// sorted into canonical order).
func Parse(text string) (*Spec, error) {
	spec := &Spec{}
	seen := map[string]bool{}
	headerSeen := false
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("load: spec line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		if !headerSeen {
			if line != specHeader {
				return nil, fail("first directive must be %q, got %q", specHeader, line)
			}
			headerSeen = true
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "name":
			if seen["name"] {
				return nil, fail("duplicate name directive")
			}
			seen["name"] = true
			if len(fields) != 2 {
				return nil, fail("name wants exactly one value")
			}
			spec.Name = fields[1]
		case "sessions":
			if seen["sessions"] {
				return nil, fail("duplicate sessions directive")
			}
			seen["sessions"] = true
			if len(fields) != 2 {
				return nil, fail("sessions wants exactly one value")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("sessions %q: %v", fields[1], err)
			}
			spec.Sessions = n
		case "table":
			t, err := parseTable(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			spec.Tables = append(spec.Tables, t)
		case "phase":
			p, err := parsePhase(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			spec.Phases = append(spec.Phases, p)
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if !headerSeen {
		return nil, fmt.Errorf("load: empty spec (missing %q header)", specHeader)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// parseTable parses the parameters of one table directive.
func parseTable(fields []string) (TableSpec, error) {
	if len(fields) == 0 {
		return TableSpec{}, fmt.Errorf("table wants a dataset")
	}
	t := TableSpec{Dataset: fields[0]}
	for _, f := range fields[1:] {
		key, val, err := kv(f)
		if err != nil {
			return TableSpec{}, err
		}
		switch key {
		case "name":
			t.Name = val
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return TableSpec{}, fmt.Errorf("table seed %q: %v", val, err)
			}
			t.Seed = s
		case "rows":
			n, err := strconv.Atoi(val)
			if err != nil {
				return TableSpec{}, fmt.Errorf("table rows %q: %v", val, err)
			}
			t.Rows = n
		case "cols":
			n, err := strconv.Atoi(val)
			if err != nil {
				return TableSpec{}, fmt.Errorf("table cols %q: %v", val, err)
			}
			t.Cols = n
		default:
			return TableSpec{}, fmt.Errorf("unknown table parameter %q", key)
		}
	}
	if t.Name == "" {
		t.Name = t.Dataset
	}
	return t, nil
}

// parsePhase parses the parameters of one phase directive.
func parsePhase(fields []string) (Phase, error) {
	if len(fields) == 0 {
		return Phase{}, fmt.Errorf("phase wants a name")
	}
	p := Phase{Name: fields[0], Kind: KindRepeat, Pool: DefaultPool}
	seenThink := false
	for _, f := range fields[1:] {
		key, val, err := kv(f)
		if err != nil {
			return Phase{}, err
		}
		switch key {
		case "kind":
			p.Kind = val
		case "requests":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Phase{}, fmt.Errorf("phase requests %q: %v", val, err)
			}
			p.Requests = n
		case "think":
			d, err := parseThink(val)
			if err != nil {
				return Phase{}, err
			}
			p.Think = d
			seenThink = true
		case "pool":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Phase{}, fmt.Errorf("phase pool %q: %v", val, err)
			}
			p.Pool = n
		case "exclude":
			if p.Exclude, err = parseProb(key, val); err != nil {
				return Phase{}, err
			}
		case "skipcache":
			if p.SkipCache, err = parseProb(key, val); err != nil {
				return Phase{}, err
			}
		case "approx":
			if p.Approx, err = parseProb(key, val); err != nil {
				return Phase{}, err
			}
		case "modes":
			mws, err := parseModes(val)
			if err != nil {
				return Phase{}, err
			}
			p.Modes = mws
		default:
			return Phase{}, fmt.Errorf("unknown phase parameter %q", key)
		}
	}
	if !seenThink {
		return Phase{}, fmt.Errorf("phase %s: missing think=<dist>", p.Name)
	}
	return p, nil
}

// parseModes parses a mode mix "default:3,robust:1" and canonicalizes the
// order.
func parseModes(val string) ([]ModeWeight, error) {
	byMode := map[Mode]float64{}
	for _, part := range strings.Split(val, ",") {
		name, w, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("modes entry %q: want mode:weight", part)
		}
		m, err := parseMode(name)
		if err != nil {
			return nil, err
		}
		if _, dup := byMode[m]; dup {
			return nil, fmt.Errorf("modes: duplicate mode %q", name)
		}
		weight, err := strconv.ParseFloat(w, 64)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("modes weight %q: want a non-negative number", w)
		}
		byMode[m] = weight
	}
	var out []ModeWeight
	for _, m := range modeOrder {
		if w, ok := byMode[m]; ok {
			out = append(out, ModeWeight{Mode: m, Weight: w})
		}
	}
	return out, nil
}

// DefaultPool is the repeat-pool size when a phase leaves it unset.
const DefaultPool = 4

// Limits keeping generated workloads and micro tables sane.
const (
	maxSessions      = 4096
	maxPhaseRequests = 1 << 20
	maxMicroRows     = 1 << 20
	maxMicroCols     = 256
	minMicroRows     = 64
	minMicroCols     = 2
)

// Validate rejects structurally invalid specs with a loud error.
func (s *Spec) Validate() error {
	if !validIdent(s.Name) {
		return fmt.Errorf("load: spec name %q is not a valid identifier", s.Name)
	}
	if s.Sessions < 1 || s.Sessions > maxSessions {
		return fmt.Errorf("load: sessions %d outside [1, %d]", s.Sessions, maxSessions)
	}
	if len(s.Tables) == 0 {
		return fmt.Errorf("load: spec declares no tables")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("load: spec declares no phases")
	}
	names := map[string]bool{}
	for i, t := range s.Tables {
		if !validIdent(t.Name) {
			return fmt.Errorf("load: table %d name %q is not a valid identifier", i, t.Name)
		}
		if names[t.Name] {
			return fmt.Errorf("load: duplicate table name %q", t.Name)
		}
		names[t.Name] = true
		switch t.Dataset {
		case DatasetUSCrime, DatasetBoxOffice, DatasetInnovation:
			if t.Rows != 0 || t.Cols != 0 {
				return fmt.Errorf("load: table %q: rows/cols are only valid for micro tables", t.Name)
			}
		case DatasetMicro:
			if t.Rows < minMicroRows || t.Rows > maxMicroRows {
				return fmt.Errorf("load: micro table %q rows %d outside [%d, %d]", t.Name, t.Rows, minMicroRows, maxMicroRows)
			}
			if t.Cols < minMicroCols || t.Cols > maxMicroCols {
				return fmt.Errorf("load: micro table %q cols %d outside [%d, %d]", t.Name, t.Cols, minMicroCols, maxMicroCols)
			}
		default:
			return fmt.Errorf("load: table %q: unknown dataset %q", t.Name, t.Dataset)
		}
	}
	phaseNames := map[string]bool{}
	for i, p := range s.Phases {
		if !validIdent(p.Name) {
			return fmt.Errorf("load: phase %d name %q is not a valid identifier", i, p.Name)
		}
		if phaseNames[p.Name] {
			return fmt.Errorf("load: duplicate phase name %q", p.Name)
		}
		phaseNames[p.Name] = true
		switch p.Kind {
		case KindRepeat, KindChurn, KindBurst:
		default:
			return fmt.Errorf("load: phase %q: unknown kind %q", p.Name, p.Kind)
		}
		if p.Requests < 1 || p.Requests > maxPhaseRequests {
			return fmt.Errorf("load: phase %q requests %d outside [1, %d]", p.Name, p.Requests, maxPhaseRequests)
		}
		if p.Pool < 1 || p.Pool > 1024 {
			return fmt.Errorf("load: phase %q pool %d outside [1, 1024]", p.Name, p.Pool)
		}
		if p.Exclude < 0 || p.Exclude > 1 || p.SkipCache < 0 || p.SkipCache > 1 ||
			p.Approx < 0 || p.Approx > 1 {
			return fmt.Errorf("load: phase %q probabilities outside [0, 1]", p.Name)
		}
		total := 0.0
		for _, mw := range p.Modes {
			if mw.Weight < 0 {
				return fmt.Errorf("load: phase %q mode %s weight %v is negative", p.Name, mw.Mode, mw.Weight)
			}
			total += mw.Weight
		}
		if len(p.Modes) > 0 && total <= 0 {
			return fmt.Errorf("load: phase %q mode mix has no positive weight", p.Name)
		}
	}
	return nil
}

// Modes returns the distinct engine modes the spec can draw, in canonical
// order — the set of routers an in-process target must build.
func (s *Spec) Modes() []Mode {
	set := map[Mode]bool{}
	for _, p := range s.Phases {
		if len(p.Modes) == 0 {
			set[Mode{}] = true
			continue
		}
		for _, mw := range p.Modes {
			if mw.Weight > 0 {
				set[mw.Mode] = true
			}
		}
	}
	var out []Mode
	for _, m := range modeOrder {
		if set[m] {
			out = append(out, m)
		}
	}
	return out
}

// TotalRequests returns the scheduled request count (sessions × Σ phase
// requests), before shed retries.
func (s *Spec) TotalRequests() int {
	per := 0
	for _, p := range s.Phases {
		per += p.Requests
	}
	return per * s.Sessions
}
