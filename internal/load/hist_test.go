package load

import (
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/randx"
)

// sortQuantile is the exact sort-based percentile the histogram is
// differential-tested against: sorted[⌊q·(n−1)⌋].
func sortQuantile(samples []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	return s[int(q*float64(len(s)-1))]
}

// adversarialDistributions builds the latency shapes that break naive
// estimators: heavy ties, bimodal gaps, single samples, zeros, monotone
// ramps, and heavy tails spanning many octaves.
func adversarialDistributions() map[string][]time.Duration {
	r := randx.New(7)
	dists := map[string][]time.Duration{
		"single-sample":  {1234567},
		"two-samples":    {5 * time.Millisecond, 5 * time.Second},
		"all-zero":       make([]time.Duration, 100),
		"heavy-ties":     nil,
		"bimodal":        nil,
		"monotone-ramp":  nil,
		"heavy-tail":     nil,
		"uniform-random": nil,
		"tiny-values":    {0, 1, 2, 3, 4, 5, 30, 31, 32, 33, 63, 64, 65},
	}
	for i := 0; i < 500; i++ {
		// 90% of samples are the identical 2ms, the rest scattered.
		if r.Bernoulli(0.9) {
			dists["heavy-ties"] = append(dists["heavy-ties"], 2*time.Millisecond)
		} else {
			dists["heavy-ties"] = append(dists["heavy-ties"], time.Duration(r.Intn(int(50*time.Millisecond))))
		}
		// Two narrow modes five orders of magnitude apart.
		if r.Bernoulli(0.5) {
			dists["bimodal"] = append(dists["bimodal"], time.Duration(100+r.Intn(20))*time.Microsecond)
		} else {
			dists["bimodal"] = append(dists["bimodal"], time.Duration(10+r.Intn(2))*time.Second)
		}
		dists["monotone-ramp"] = append(dists["monotone-ramp"], time.Duration(i)*time.Millisecond)
		dists["heavy-tail"] = append(dists["heavy-tail"], time.Duration(float64(time.Microsecond)*math.Exp(r.Float64()*18)))
		dists["uniform-random"] = append(dists["uniform-random"], time.Duration(r.Intn(int(3*time.Second))))
	}
	return dists
}

// TestHistogramDifferential pins the histogram's p50/p95/p99 (and edges)
// against sort-based exact percentiles: the exact value must fall inside
// the bucket the histogram reads the quantile from, and the reported figure
// must be within the layout's guaranteed relative error of the exact one.
func TestHistogramDifferential(t *testing.T) {
	quantiles := []float64{0, 0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1}
	for name, samples := range adversarialDistributions() {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			for _, s := range samples {
				h.Observe(s)
			}
			if h.Count() != int64(len(samples)) {
				t.Fatalf("count = %d, want %d", h.Count(), len(samples))
			}
			for _, q := range quantiles {
				exact := sortQuantile(samples, q)
				lo, hi := h.QuantileBounds(q)
				if exact < lo || exact > hi {
					t.Errorf("q=%v: exact %v outside histogram bucket [%v, %v]", q, exact, lo, hi)
				}
				got := h.Quantile(q)
				// Relative error bound: the bucket width is at most
				// 1/histSubSize of its lower bound (exact below histSubSize).
				maxErr := float64(exact) / histSubSize
				if diff := math.Abs(float64(got - exact)); diff > maxErr+1 {
					t.Errorf("q=%v: histogram %v vs exact %v (err %v > bound %v)", q, got, exact, diff, maxErr)
				}
			}
			if h.Quantile(1) != sortQuantile(samples, 1) {
				t.Errorf("max: histogram %v vs exact %v", h.Quantile(1), sortQuantile(samples, 1))
			}
			if h.Quantile(0) != sortQuantile(samples, 0) {
				t.Errorf("min: histogram %v vs exact %v", h.Quantile(0), sortQuantile(samples, 0))
			}
		})
	}
}

// TestHistogramMerge asserts merge(h1, h2) is exactly the histogram of the
// union of the sample sets — counts, totals, extremes and every quantile.
func TestHistogramMerge(t *testing.T) {
	dists := adversarialDistributions()
	names := make([]string, 0, len(dists))
	for name := range dists {
		names = append(names, name)
	}
	sort.Strings(names)
	// Merge every adjacent pair of distributions.
	for i := 0; i+1 < len(names); i++ {
		s1, s2 := dists[names[i]], dists[names[i+1]]
		var h1, h2, merged, combined Histogram
		for _, s := range s1 {
			h1.Observe(s)
			combined.Observe(s)
		}
		for _, s := range s2 {
			h2.Observe(s)
			combined.Observe(s)
		}
		merged.Merge(&h1)
		merged.Merge(&h2)
		if merged != combined {
			t.Errorf("merge(%s, %s) differs from histogram of union", names[i], names[i+1])
		}
	}
	// Merging an empty histogram is a no-op.
	var h, empty Histogram
	h.Observe(time.Millisecond)
	before := h
	h.Merge(&empty)
	h.Merge(nil)
	if h != before {
		t.Error("merging an empty histogram changed the receiver")
	}
}

// TestHistogramEmpty pins the zero-value behavior.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram not all-zero: %v", h.String())
	}
}

// TestBucketLayout sweeps the bucket mapping: indices are monotone in the
// value, bounds are contiguous and consistent with bucketIndex.
func TestBucketLayout(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1000, 1 << 20, (1 << 20) + 7, 1 << 40, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Errorf("bucketIndex(%d) = %d not monotone (prev %d)", v, idx, prev)
		}
		prev = idx
		lo, hi := bucketBounds(idx)
		if v < lo || (v > hi && hi > 0) {
			t.Errorf("value %d outside its bucket %d bounds [%d, %d]", v, idx, lo, hi)
		}
		if idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d exceeds layout size %d", v, idx, histBuckets)
		}
	}
	// Contiguity: every bucket's hi + 1 is the next bucket's lo.
	for i := 0; i < histBuckets-1; i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if hi+1 != lo && hi > 0 { // the final octave can overflow int64; hi>0 guards it
			t.Fatalf("buckets %d and %d not contiguous: hi=%d lo=%d", i, i+1, hi, lo)
		}
	}
}
