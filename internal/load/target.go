package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/shard"
)

// ShedError reports that the target shed the request (admission queue
// full / HTTP 503) with the backoff hint it carried. The driver honors
// RetryAfter before re-attempting.
type ShedError struct {
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("load: request shed (retry after %v)", e.RetryAfter)
}

// Outcome is one successfully served request.
type Outcome struct {
	// Bytes is the canonical normalized report encoding — volatile fields
	// (timings, cache flags) removed, so two servings of the same request
	// must be byte-identical no matter which shard, process or cache tier
	// answered.
	Bytes []byte
	// ReportCacheHit reports the request was served from the report memo.
	ReportCacheHit bool
	// ApproxKey identifies the approximate configuration that served the
	// request — "cap=<rows>,seed=<seed>" from the report's provenance
	// block, empty for a full-precision answer. The driver buckets byte
	// identity per (request, ApproxKey): an exact answer and a sampled one
	// legitimately differ, but two servings under the same approximate
	// configuration must still be byte-identical.
	ApproxKey string
}

// approxKey renders the identity of an approximate report's configuration.
func approxKey(a *core.Approximate) string {
	if a == nil {
		return ""
	}
	return fmt.Sprintf("cap=%d,seed=%d", a.CapRows, a.Seed)
}

// Target abstracts what the driver replays against.
type Target interface {
	// Name labels the target in results ("router", "http").
	Name() string
	// Do executes one request. Shed requests return *ShedError.
	Do(req *Request) (*Outcome, error)
	Close() error
}

// RouterTarget drives in-process shard routers: one per engine mode the
// spec uses (robust/extended change engine construction), all sharing one
// report cache — the NewSessionShared topology, with explicit admission
// Params so tests can provoke saturation.
type RouterTarget struct {
	catalog *db.Catalog
	routers map[Mode]*shard.Router
	// approxCap is the sample cap approximate requests resolve to — the
	// same edge resolution ziggyd applies server-side.
	approxCap int
}

// NewRouterTarget registers the schedule's tables and builds the routers.
// cfg.Shards picks the shard count; params tunes the admission queues
// (zero = package defaults).
func NewRouterTarget(cfg core.Config, sched *Schedule, params shard.Params) (*RouterTarget, error) {
	t := &RouterTarget{
		catalog:   db.NewCatalog(),
		routers:   map[Mode]*shard.Router{},
		approxCap: cfg.EffectiveApproxRows(),
	}
	for _, tbl := range sched.Tables {
		if err := t.catalog.Register(tbl.Frame); err != nil {
			return nil, err
		}
	}
	// One report cache across all modes: entries are keyed by config hash,
	// so modes never serve each other's reports but share the budget.
	reports := core.NewReportCache(cfg.CacheEntries, cfg.CacheBytes)
	for _, m := range sched.Spec.Modes() {
		mcfg := cfg
		mcfg.Robust = m.Robust
		mcfg.Extended = m.Extended
		r, err := shard.NewWithParams(mcfg, reports, params)
		if err != nil {
			return nil, fmt.Errorf("load: building %s router: %w", m, err)
		}
		t.routers[m] = r
	}
	return t, nil
}

// Name implements Target.
func (t *RouterTarget) Name() string { return "router" }

// Do implements Target: execute the query and characterize the selection
// on the mode's router, mirroring ziggyd's request handling (including the
// server-side excludePredicate expansion).
func (t *RouterTarget) Do(req *Request) (*Outcome, error) {
	router, ok := t.routers[req.Mode]
	if !ok {
		return nil, fmt.Errorf("load: no router for mode %s", req.Mode)
	}
	res, err := t.catalog.Query(req.SQL)
	if err != nil {
		return nil, err
	}
	opts := core.Options{SkipReportCache: req.SkipCache}
	if req.Exclude {
		opts.ExcludeColumns = req.PredCols
	}
	if req.Approx {
		opts.ApproxRows = t.approxCap
	}
	rep, err := router.CharacterizeOpts(res.Base, res.Mask, opts)
	if err != nil {
		var sat *shard.SaturatedError
		if errors.As(err, &sat) {
			return nil, &ShedError{RetryAfter: sat.RetryAfter}
		}
		return nil, err
	}
	return &Outcome{
		Bytes:          normalizeReport(rep),
		ReportCacheHit: rep.ReportCacheHit,
		ApproxKey:      approxKey(rep.Approximate),
	}, nil
}

// Stats folds every mode router's shard snapshots — the server-side
// counters (rejections, requests) tests assert against.
func (t *RouterTarget) Stats() []shard.Stats {
	var out []shard.Stats
	for _, m := range modeOrder {
		if r, ok := t.routers[m]; ok {
			out = append(out, r.Stats())
		}
	}
	return out
}

// Close implements Target.
func (t *RouterTarget) Close() error {
	var first error
	for _, r := range t.routers {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// normalizeReport strips the fields that legitimately differ between
// servings of the same request — timings and cache provenance — and
// encodes the rest canonically. Byte equality of the result is the
// cross-shard determinism contract.
func normalizeReport(rep *core.Report) []byte {
	norm := *rep
	norm.Timings = core.Timings{}
	norm.CacheHit = false
	norm.ReportCacheHit = false
	return core.EncodeReport(&norm)
}

// HTTPTarget drives a real ziggyd front over its public JSON API — the
// same POST /api/characterize interactive users hit.
type HTTPTarget struct {
	base   string
	client *http.Client
	// ModesCollapsed counts requests whose scheduled non-default engine
	// mode was collapsed to the deployment's configuration: a deployment
	// runs one config, so robust/extended mixes only differentiate
	// in-process targets. Recorded in the result rather than hidden.
	ModesCollapsed atomic.Int64
}

// NewHTTPTarget points the driver at a ziggyd front. addr is host:port or
// an http:// URL. The deployment must have the schedule's tables
// registered under the same names with identical content (same dataset
// seeds).
func NewHTTPTarget(addr string) *HTTPTarget {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &HTTPTarget{
		base:   strings.TrimRight(addr, "/"),
		client: &http.Client{Timeout: 120 * time.Second},
	}
}

// Name implements Target.
func (t *HTTPTarget) Name() string { return "http" }

// characterizeBody mirrors the server's characterizeRequest wire shape.
type characterizeBody struct {
	SQL              string `json:"sql"`
	ExcludePredicate bool   `json:"excludePredicate"`
	SkipReportCache  bool   `json:"skipReportCache"`
	Approximate      bool   `json:"approximate"`
}

// volatileResponseFields differ between servings of one request and are
// stripped before the byte-identity comparison, matching what
// normalizeReport removes from the binary encoding.
var volatileResponseFields = []string{
	"prepMillis", "searchMillis", "postMillis", "cacheHit", "reportCacheHit",
}

// Do implements Target.
func (t *HTTPTarget) Do(req *Request) (*Outcome, error) {
	if req.Mode != (Mode{}) {
		t.ModesCollapsed.Add(1)
	}
	body, err := json.Marshal(characterizeBody{
		SQL:              req.SQL,
		ExcludePredicate: req.Exclude,
		SkipReportCache:  req.SkipCache,
		Approximate:      req.Approx,
	})
	if err != nil {
		return nil, err
	}
	resp, err := t.client.Post(t.base+"/api/characterize", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusServiceUnavailable:
		return nil, &ShedError{RetryAfter: retryAfterFrom(resp)}
	default:
		return nil, fmt.Errorf("load: %s: HTTP %d: %s", req.SQL, resp.StatusCode, strings.TrimSpace(string(payload)))
	}
	var decoded map[string]any
	if err := json.Unmarshal(payload, &decoded); err != nil {
		return nil, fmt.Errorf("load: decoding response: %w", err)
	}
	hit, _ := decoded["reportCacheHit"].(bool)
	for _, f := range volatileResponseFields {
		delete(decoded, f)
	}
	// The approximate provenance block is NOT volatile: it identifies the
	// sampled configuration that answered, and byte identity is asserted
	// per (request, approximate configuration).
	key := ""
	if a, ok := decoded["approximate"].(map[string]any); ok {
		cap, _ := a["capRows"].(float64)
		seed, _ := a["seed"].(float64)
		key = fmt.Sprintf("cap=%d,seed=%d", int64(cap), uint64(seed))
	}
	// json.Marshal sorts map keys, so the re-encoding is canonical.
	canon, err := json.Marshal(decoded)
	if err != nil {
		return nil, err
	}
	return &Outcome{Bytes: canon, ReportCacheHit: hit, ApproxKey: key}, nil
}

// retryAfterFrom reads the backoff hint ziggyd attaches to 503 responses:
// the millisecond-precision header first, the standard seconds one as a
// fallback, the router's minimum clamp when neither parses.
func retryAfterFrom(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After-Millis"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms >= 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if sec, err := strconv.ParseInt(v, 10, 64); err == nil && sec >= 0 {
			return time.Duration(sec) * time.Second
		}
	}
	return 25 * time.Millisecond
}

// Close implements Target.
func (t *HTTPTarget) Close() error {
	t.client.CloseIdleConnections()
	return nil
}
